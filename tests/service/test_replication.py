"""Warm-standby replication: log shipping, failover, and the layout guards.

Covers the replication module's three layers plus the two robustness
satellites that ride with it:

* :class:`~repro.service.wal.LogShipper` edge cases — torn final frames,
  shipping across a ``truncate`` segment recycle, and a standby lagging
  far behind the primary;
* :class:`~repro.service.replication.ShardReplicaSet` bit-identity and
  gap detection, and :class:`FailureDetector` verdicts under an injected
  clock;
* forced failover on every backend (serial and thread here; the process
  backend's SIGKILL sweep lives in ``test_replication_chaos.py``);
* ``close()`` idempotency after a worker crash (satellite: double-close
  and masked-exception paths);
* :class:`~repro.service.wal.WALLayoutError` on damaged or foreign
  segment sets (satellite: manifest-without-segments and foreign
  ``num_shards`` layouts fail with a named error).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import RTBS
from repro.core.base import Sampler
from repro.engine import FailoverError, WorkerCrashError
from repro.service import (
    ReplicationConfig,
    SamplerService,
    ShardReplicaSet,
    WALLayoutError,
    WriteAheadLog,
    recover_service,
)
from repro.service.replication import FailureDetector
from repro.service.wal import read_log_records

from tests.faults import assert_states_equal


def _factory():
    return lambda rng: RTBS(n=40, lambda_=0.15, rng=rng)


def _batches(count: int, start: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(404)
    out = [rng.integers(0, 50_000, size=60) for _ in range(start + count)]
    return out[start:]


def _routed(batch: np.ndarray, num_shards: int = 2) -> list:
    return [
        (shard_id, batch[shard_id::num_shards]) for shard_id in range(num_shards)
    ]


# ----------------------------------------------------------------------
# LogShipper edge cases (satellite 3)
# ----------------------------------------------------------------------
class TestLogShipper:
    def test_polls_ship_incrementally_and_respect_the_horizon(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
        shipper = wal.open_shipper()
        for seq in range(3):
            wal.append_batch(
                seq, float(seq + 1), _routed(np.arange(10) + seq), explicit_keys=False
            )
        # The horizon caps the shipment even though seq 2 is already on disk.
        shipped = shipper.poll(-1, 1)
        assert [r.seq for r in shipped.commits] == [0, 1]
        assert set(shipped.per_shard) == {0, 1}
        assert all(len(frames) == 2 for frames, _ in shipped.per_shard.values())
        # The next poll picks up exactly the remainder — no re-delivery.
        shipped = shipper.poll(1, 2)
        assert [r.seq for r in shipped.commits] == [2]
        assert all(len(frames) == 1 for frames, _ in shipped.per_shard.values())
        wal.close()

    def test_torn_final_frame_stops_without_advancing_then_resumes(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", num_shards=1)
        shipper = wal.open_shipper()
        wal.append_batch(0, 1.0, [(0, np.arange(20))], explicit_keys=False)
        wal.append_batch(1, 2.0, [(0, np.arange(20, 40))], explicit_keys=False)
        wal.flush()
        path = os.path.join(wal.directory, "shard-00000.wal")
        whole = open(path, "rb").read()
        records = read_log_records(path).records
        # Tear the final frame mid-body, as an interrupted append would.
        cut = records[-1].start + 7
        os.truncate(path, cut)
        shipped = shipper.poll(-1, 1)
        # The commit log vouches for both batches, but the torn shard frame
        # is not shipped — and the cursor must NOT advance past it.
        assert [r.seq for r in shipped.commits] == [0, 1]
        (frames, times) = shipped.per_shard[0]
        assert len(frames) == 1 and times == [1.0]
        # The append completes (the missing bytes land); the next poll
        # resumes from the un-advanced cursor and ships the whole frame.
        with open(path, "r+b") as fh:
            fh.seek(cut)
            fh.write(whole[cut:])
        shipped = shipper.poll(0, 1)
        (frames, times) = shipped.per_shard[0]
        assert len(frames) == 1 and times == [2.0]
        assert frames[0].tolist() == list(range(20, 40))
        wal.close()

    def test_shipping_across_a_truncate_recycle_never_redelivers(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
        shipper = wal.open_shipper()
        for seq in range(4):
            wal.append_batch(
                seq, float(seq + 1), _routed(np.arange(8) * (seq + 1)), explicit_keys=False
            )
        assert shipper.poll(-1, 3).batches == 4
        # Checkpoint-style recycle: everything applied so far leaves the log.
        wal.truncate(3)
        wal.append_batch(4, 5.0, _routed(np.arange(8) * 5), explicit_keys=False)
        shipped = shipper.poll(3, 4)
        # The cursors rewound to the recycled segment heads; after_seq
        # dedupes, so exactly the new batch arrives — nothing re-delivered,
        # nothing skipped.
        assert [r.seq for r in shipped.commits] == [4]
        for frames, times in shipped.per_shard.values():
            assert len(frames) == 1 and times == [5.0]
        wal.close()

    def test_standby_lagging_many_batches_catches_up_in_one_poll(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
        shipper = wal.open_shipper()
        batches = _batches(100)
        for seq, batch in enumerate(batches):
            wal.append_batch(
                seq, float(seq + 1), _routed(batch), explicit_keys=False
            )
        shipped = shipper.poll(-1, 99)
        assert shipped.batches == 100
        # Replaying the shipment reproduces a direct serial run bit for bit.
        replica = RTBS(n=40, lambda_=0.15, rng=7)
        frames, times = shipped.per_shard[0]
        replica.process_stream(frames, times=times)
        reference = RTBS(n=40, lambda_=0.15, rng=7)
        reference.process_stream(
            [b[0::2] for b in batches], times=[float(s + 1) for s in range(100)]
        )
        assert_states_equal(replica.state_dict(), reference.state_dict())
        wal.close()


# ----------------------------------------------------------------------
# ShardReplicaSet
# ----------------------------------------------------------------------
class TestShardReplicaSet:
    def test_standby_is_bit_identical_at_every_shipped_watermark(self, tmp_path):
        service = SamplerService(
            _factory(), num_shards=3, rng=11, wal_dir=tmp_path / "wal"
        )
        replica = ShardReplicaSet.capture(service, service._wal, -1)
        for seq, batch in enumerate(_batches(12)):
            service.ingest_batch(batch)
            replica.catch_up(seq)
            for shard_id in service.active_shards:
                assert_states_equal(
                    replica.samplers[shard_id].state_dict(),
                    service.shard(shard_id).state_dict(),
                )
        service.close()

    def test_catch_up_refuses_a_gap_in_the_committed_tail(self, tmp_path):
        service = SamplerService(
            _factory(), num_shards=2, rng=11, wal_dir=tmp_path / "wal"
        )
        for batch in _batches(5):
            service.ingest_batch(batch)
        # A replica captured at -1 that never applied anything, after the
        # primary checkpointed and truncated, has lost its tail: promotion
        # from it would silently drop batches, so it must refuse.
        replica = ShardReplicaSet.capture(service, service._wal, -1)
        replica.applied_seq = -1
        service.checkpoint()
        service.ingest_batch(_batches(1, start=5)[0])
        with pytest.raises(FailoverError, match="truncat"):
            replica.catch_up(service.batches_seen - 1)
        service.close()


# ----------------------------------------------------------------------
# FailureDetector
# ----------------------------------------------------------------------
class _FakePool:
    def __init__(self):
        self.dead: list[int] = []
        self.acked: int | None = None
        self.pending = 0

    def dead_workers(self):
        return list(self.dead)

    def acked_through(self):
        return self.acked

    def pending_commands(self):
        return self.pending


class TestFailureDetector:
    def test_liveness_probe_fires_without_any_clock(self):
        pool = _FakePool()
        detector = FailureDetector(clock=None)
        assert not detector.check(pool).failed
        pool.dead = [1]
        verdict = detector.check(pool)
        assert verdict.failed and verdict.dead_workers == (1,)

    def test_ack_staleness_needs_the_injected_clock(self):
        pool = _FakePool()
        pool.pending = 3
        assert not FailureDetector(clock=None).check(pool).failed

    def test_stall_is_declared_only_after_the_timeout_without_progress(self):
        now = iter([0.0, 1.0, 2.0, 25.0, 40.0]).__next__
        detector = FailureDetector(clock=now, ack_timeout=30.0)
        pool = _FakePool()
        pool.pending, pool.acked = 2, 5
        assert not detector.check(pool).failed  # t=0: baseline
        assert not detector.check(pool).failed  # t=1: within timeout
        pool.acked = 6
        assert not detector.check(pool).failed  # t=2: watermark moved
        assert not detector.check(pool).failed  # t=25: 23s since progress
        verdict = detector.check(pool)  # t=40: 38s without progress
        assert verdict.failed and verdict.stalled

    def test_an_idle_pool_is_never_stalled(self):
        now = iter([0.0, 1000.0, 2000.0]).__next__
        detector = FailureDetector(clock=now, ack_timeout=1.0)
        pool = _FakePool()
        pool.acked = 9
        for _ in range(3):
            assert not detector.check(pool).failed


# ----------------------------------------------------------------------
# Forced failover on in-process backends
# ----------------------------------------------------------------------
class TestForcedFailover:
    @pytest.mark.parametrize("backend", [None, "thread:2"], ids=["serial", "thread"])
    @pytest.mark.parametrize("at_batch", [0, 4, 9])
    def test_mid_stream_promotion_is_bit_identical(self, tmp_path, backend, at_batch):
        batches = _batches(10)
        reference = SamplerService(_factory(), num_shards=4, rng=3)
        reference.ingest(batches)
        golden = reference.state_dict()

        service = SamplerService(
            _factory(),
            num_shards=4,
            rng=3,
            executor=backend,
            wal_dir=tmp_path / "wal",
            replication=ReplicationConfig(ship_interval=3),
        )
        for index, batch in enumerate(batches):
            service.ingest_batch(batch)
            if index == at_batch:
                service.failover()
        assert service.stats()["durability"]["replication"]["failovers"] == 1
        assert_states_equal(service.state_dict(), golden)
        service.close()

    def test_repeated_failovers_and_checkpoints_stay_exact(self, tmp_path):
        batches = _batches(14)
        reference = SamplerService(_factory(), num_shards=2, rng=5)
        reference.ingest(batches)
        golden = reference.state_dict()

        service = SamplerService(
            _factory(),
            num_shards=2,
            rng=5,
            wal_dir=tmp_path / "wal",
            replication=ReplicationConfig(ship_interval=2),
        )
        for index, batch in enumerate(batches):
            service.ingest_batch(batch)
            if index % 5 == 4:
                service.failover()
            if index % 4 == 3:
                service.checkpoint()
        assert_states_equal(service.state_dict(), golden)
        # The post-failover service still recovers offline from its WAL.
        service.close()
        recovered = recover_service(tmp_path / "wal", _factory())
        try:
            assert_states_equal(recovered.state_dict(), golden)
        finally:
            recovered.close()

    def test_failover_without_replication_raises_the_named_error(self, tmp_path):
        service = SamplerService(_factory(), num_shards=2, rng=0)
        with pytest.raises(FailoverError, match="no warm standby"):
            service.failover()

    def test_replication_requires_a_wal(self):
        with pytest.raises(ValueError, match="wal_dir"):
            SamplerService(
                _factory(),
                num_shards=2,
                rng=0,
                replication=ReplicationConfig(),
            )

    def test_failover_budget_exhaustion_raises(self, tmp_path):
        service = SamplerService(
            _factory(),
            num_shards=2,
            rng=0,
            wal_dir=tmp_path / "wal",
            replication=ReplicationConfig(max_failovers=1),
        )
        service.ingest_batch(np.arange(30))
        service.failover()
        with pytest.raises(FailoverError, match="budget exhausted"):
            service.failover()
        service.close()

    def test_recover_service_re_enables_replication(self, tmp_path):
        batches = _batches(8)
        service = SamplerService(
            _factory(), num_shards=2, rng=9, wal_dir=tmp_path / "wal"
        )
        for batch in batches[:5]:
            service.ingest_batch(batch)
        service.close()

        recovered = recover_service(
            tmp_path / "wal",
            _factory(),
            replication=ReplicationConfig(ship_interval=1),
        )
        for index, batch in enumerate(batches[5:]):
            recovered.ingest_batch(batch)
            if index == 1:
                recovered.failover()
        reference = SamplerService(_factory(), num_shards=2, rng=9)
        reference.ingest(batches)
        assert_states_equal(recovered.state_dict(), reference.state_dict())
        recovered.close()


# ----------------------------------------------------------------------
# close() idempotency after a worker crash (satellite 1)
# ----------------------------------------------------------------------
def _wait_for_death(pid: float, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.01)


class TestCloseAfterCrash:
    def test_close_raises_once_then_is_idempotent(self, tmp_path):
        service = SamplerService(
            _factory(),
            num_shards=2,
            rng=0,
            executor="process:2",
            wal_dir=tmp_path / "wal",
        )
        service.ingest_batch(np.arange(50))
        victim = service.executor.transport.workers[0].process.pid
        os.kill(victim, signal.SIGKILL)
        _wait_for_death(victim)
        with pytest.raises(WorkerCrashError):
            service.close()
        # The first close already tore the pool down and closed the log;
        # every further close is a clean no-op — no double-close error, no
        # masked secondary failure.
        service.close()
        service.close()
        # The logs were flushed before the handles closed: offline recovery
        # still replays every committed batch.
        recovered = recover_service(tmp_path / "wal", _factory())
        assert recovered.batches_seen == 1
        recovered.close()

    def test_close_with_replication_promotes_instead_of_raising(self, tmp_path):
        batches = _batches(6)
        reference = SamplerService(_factory(), num_shards=2, rng=1)
        reference.ingest(batches)
        golden_items = reference.sample_items()

        service = SamplerService(
            _factory(),
            num_shards=2,
            rng=1,
            executor="process:2",
            wal_dir=tmp_path / "wal",
            replication=ReplicationConfig(ship_interval=2),
        )
        for batch in batches:
            service.ingest_batch(batch)
        victim = service.executor.transport.workers[1].process.pid
        os.kill(victim, signal.SIGKILL)
        _wait_for_death(victim)
        service.close()  # promotes; must not raise
        assert service.stats()["durability"]["replication"]["failovers"] == 1
        # The promoted service remains fully queryable after close.
        assert service.sample_items() == golden_items
        service.close()

    def test_context_manager_exit_after_crash_is_clean_with_replication(
        self, tmp_path
    ):
        with SamplerService(
            _factory(),
            num_shards=2,
            rng=1,
            executor="process:2",
            wal_dir=tmp_path / "wal",
            replication=ReplicationConfig(),
        ) as service:
            service.ingest_batch(np.arange(40))
            victim = service.executor.transport.workers[0].process.pid
            os.kill(victim, signal.SIGKILL)
            _wait_for_death(victim)
        assert service.stats()["durability"]["replication"]["failovers"] == 1

    def test_wal_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
        wal.append_batch(0, 1.0, _routed(np.arange(10)), explicit_keys=False)
        wal.close()
        wal.close()  # second close: no ValueError from closed handles


# ----------------------------------------------------------------------
# WALLayoutError on damaged / foreign segment sets (satellite 2)
# ----------------------------------------------------------------------
class TestLayoutGuards:
    def _deployed(self, tmp_path, num_shards=2):
        service = SamplerService(
            _factory(), num_shards=num_shards, rng=0, wal_dir=tmp_path / "wal"
        )
        for batch in _batches(4):
            service.ingest_batch(batch)
        service.close()
        return os.path.join(tmp_path, "wal")

    def test_missing_shard_segments_under_a_live_manifest_refuse_attach(
        self, tmp_path
    ):
        wal_dir = self._deployed(tmp_path)
        os.unlink(os.path.join(wal_dir, "shard-00001.wal"))
        with pytest.raises(WALLayoutError, match=r"missing for shards \[1\]"):
            WriteAheadLog.attach(wal_dir, num_shards=2)

    def test_recover_service_surfaces_the_layout_error(self, tmp_path):
        wal_dir = self._deployed(tmp_path)
        for shard_id in range(2):
            os.unlink(os.path.join(wal_dir, f"shard-{shard_id:05d}.wal"))
        with pytest.raises(WALLayoutError, match="segment"):
            recover_service(wal_dir, _factory())

    def test_foreign_shard_count_with_records_refuses_attach(self, tmp_path):
        wal_dir = self._deployed(tmp_path)
        with pytest.raises(WALLayoutError, match="2-shard service"):
            WriteAheadLog.attach(wal_dir, num_shards=4)

    def test_stray_foreign_segment_with_records_refuses_attach(self, tmp_path):
        wal_dir = self._deployed(tmp_path, num_shards=2)
        # A third shard's log from some other deployment lands in the dir.
        stray = WriteAheadLog.create(tmp_path / "other", num_shards=3)
        stray.append_batch(
            0, 1.0, [(2, np.arange(5))], explicit_keys=False
        )
        stray.close()
        os.replace(
            os.path.join(stray.directory, "shard-00002.wal"),
            os.path.join(wal_dir, "shard-00002.wal"),
        )
        with pytest.raises(WALLayoutError, match="shard-00002"):
            WriteAheadLog.attach(wal_dir, num_shards=2)
