"""Format-level tests for the write-ahead log: framing, torn tails, corruption.

The reader contract under damage: a *torn tail* (the final frame cut short —
the artifact of a crash mid-append) ends the scan at the last valid frame
and is reported with its byte offset; *corruption* (a CRC mismatch on a
fully-present frame, garbage headers, out-of-order sequence numbers) raises
:class:`~repro.service.WALError` naming the file and offset. No raw
``struct``/``json`` error ever escapes.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.service import WALError, WALLayoutError, WriteAheadLog
from repro.service.wal import read_log_records


def _routed(batch: np.ndarray, num_shards: int = 2):
    return [(int(index % num_shards), batch[index::num_shards]) for index in range(num_shards)]


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
    yield log
    log.close()


class TestRoundTrip:
    def test_shard_and_commit_records_round_trip(self, wal):
        batches = [np.arange(10) + 100 * seq for seq in range(3)]
        for seq, batch in enumerate(batches):
            wal.append_batch(seq, float(seq + 1), _routed(batch), explicit_keys=False)
        wal.flush()
        commit = read_log_records(os.path.join(wal.directory, "commit.wal"))
        assert [record.seq for record in commit.records] == [0, 1, 2]
        assert [record.time for record in commit.records] == [1.0, 2.0, 3.0]
        assert commit.torn is None
        shard0 = read_log_records(os.path.join(wal.directory, "shard-00000.wal"))
        for record, batch in zip(shard0.records, batches):
            np.testing.assert_array_equal(record.payload, batch[0::2])
            assert record.payload.dtype == batch.dtype

    @pytest.mark.parametrize(
        "batch",
        [
            np.arange(6, dtype=np.int64),
            np.linspace(0.0, 1.0, 7),
            np.array(["alpha", "beta", "gamma"]),
            np.array([b"raw", b"bytes"]),
            np.array([3, "mixed", (1, 2)][:2] + [[5, 6]], dtype=object),
            np.array(
                [(1, 2.5), (3, 4.5)], dtype=[("a", "<i8"), ("b", "<f8")]
            ),
        ],
        ids=["int64", "float64", "unicode", "bytes", "object", "structured"],
    )
    def test_every_payload_dtype_round_trips(self, wal, batch):
        wal.append_batch(0, 1.0, [(0, batch)], explicit_keys=False)
        wal.flush()
        scan = read_log_records(os.path.join(wal.directory, "shard-00000.wal"))
        (record,) = scan.records
        assert record.payload.dtype == batch.dtype
        assert record.payload.tolist() == batch.tolist()

    def test_explicit_keys_flag_round_trips(self, wal):
        wal.append_batch(0, 1.0, [], explicit_keys=False)
        wal.append_batch(1, 2.0, [], explicit_keys=True)
        wal.flush()
        scan = read_log_records(os.path.join(wal.directory, "commit.wal"))
        assert [record.flags & 1 for record in scan.records] == [0, 1]

    def test_empty_batch_is_commit_only(self, wal):
        wal.append_batch(0, 1.0, [], explicit_keys=False)
        wal.flush()
        assert len(read_log_records(os.path.join(wal.directory, "commit.wal")).records) == 1
        # No shard record was ever written: the segment (eagerly created
        # with every other one at create()) holds only its header.
        assert read_log_records(os.path.join(wal.directory, "shard-00000.wal")).records == []


class TestTornTails:
    def _filled(self, wal) -> str:
        for seq in range(3):
            wal.append_batch(seq, float(seq + 1), _routed(np.arange(40)), explicit_keys=False)
        wal.close()
        return os.path.join(wal.directory, "shard-00001.wal")

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_truncated_tail_stops_at_last_valid_frame(self, wal, cut):
        path = self._filled(wal)
        data = open(path, "rb").read()
        scan = read_log_records(path)
        # Cut inside the final frame (three variants: mid-body, just past
        # the frame header, mid-header).
        cut_at = scan.records[-1].start + cut
        with open(path, "wb") as fh:
            fh.write(data[:cut_at])
        damaged = read_log_records(path)
        assert [record.seq for record in damaged.records] == [0, 1]
        assert damaged.torn is not None
        assert damaged.torn.offset == scan.records[-1].start

    def test_strict_reader_raises_naming_file_and_offset(self, wal):
        path = self._filled(wal)
        data = open(path, "rb").read()
        scan = read_log_records(path)
        with open(path, "wb") as fh:
            fh.write(data[: scan.records[-1].start + 5])
        with pytest.raises(WALError, match="torn write"):
            read_log_records(path, strict=True)
        with pytest.raises(WALError, match=f"offset {scan.records[-1].start}"):
            read_log_records(path, strict=True)
        with pytest.raises(WALError, match=os.path.basename(path)):
            read_log_records(path, strict=True)

    def test_file_shorter_than_header_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "stub.wal"
        path.write_bytes(b"REPROWA")  # 7 bytes: even the magic is cut short
        scan = read_log_records(path)
        assert scan.records == [] and scan.torn is not None
        with pytest.raises(WALError, match="torn write at offset 0"):
            read_log_records(path, strict=True)


class TestCorruption:
    def _filled(self, wal) -> str:
        for seq in range(4):
            wal.append_batch(seq, float(seq + 1), _routed(np.arange(60)), explicit_keys=False)
        wal.close()
        return os.path.join(wal.directory, "shard-00000.wal")

    def test_bit_flip_mid_log_raises_crc_error_with_offset(self, wal):
        path = self._filled(wal)
        scan = read_log_records(path)
        target = scan.records[1]
        data = bytearray(open(path, "rb").read())
        data[target.start + 12] ^= 0xFF  # flip a body byte of record 1
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(WALError, match="CRC mismatch"):
            read_log_records(path)
        with pytest.raises(WALError, match=f"offset {target.start}"):
            read_log_records(path)
        # Corruption below the tail is never tolerated, strict or not.
        with pytest.raises(WALError):
            read_log_records(path, strict=False)

    def test_garbage_file_is_not_a_wal(self, tmp_path):
        path = tmp_path / "noise.wal"
        path.write_bytes(b"definitely not a log" * 4)
        with pytest.raises(WALError, match="bad magic"):
            read_log_records(path)

    def test_newer_format_version_is_refused(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_bytes(struct.pack("<8sHHi", b"REPROWAL", 99, 1, 0))
        with pytest.raises(WALError, match="version 99"):
            read_log_records(path)

    def test_out_of_order_sequence_numbers_are_corruption(self, tmp_path):
        log = WriteAheadLog.create(tmp_path / "wal", num_shards=1)
        log.append_batch(5, 1.0, [(0, np.arange(3))], explicit_keys=False)
        log.append_batch(6, 2.0, [(0, np.arange(3))], explicit_keys=False)
        log.close()
        path = os.path.join(log.directory, "shard-00000.wal")
        data = open(path, "rb").read()
        scan = read_log_records(path)
        first = data[scan.records[0].start : scan.records[0].end]
        second = data[scan.records[1].start : scan.records[1].end]
        with open(path, "wb") as fh:  # swap the two records
            fh.write(data[: scan.records[0].start] + second + first)
        with pytest.raises(WALError, match="not after"):
            read_log_records(path)


class TestLifecycle:
    def test_create_refuses_a_deployments_directory(self, tmp_path):
        log = WriteAheadLog.create(tmp_path / "wal", num_shards=2)
        log.append_batch(0, 1.0, [(0, np.arange(3))], explicit_keys=False)
        log.close()
        with pytest.raises(WALError, match="recover_service"):
            WriteAheadLog.create(tmp_path / "wal", num_shards=2)

    def test_create_tolerates_mid_construction_debris(self, tmp_path):
        # A checkpoint directory with no manifest (crash before the first
        # swap) is not a deployment: nothing was ever durable.
        (tmp_path / "wal" / "checkpoint").mkdir(parents=True)
        (tmp_path / "wal" / "checkpoint" / "service-abc").mkdir()
        WriteAheadLog.create(tmp_path / "wal", num_shards=2).close()

    def test_attach_refuses_mismatched_shard_count(self, tmp_path):
        log = WriteAheadLog.create(tmp_path / "wal", num_shards=3)
        log.append_batch(0, 1.0, [(0, np.arange(3))], explicit_keys=False)
        log.close()
        with pytest.raises(WALError, match="3-shard"):
            WriteAheadLog.attach(tmp_path / "wal", num_shards=5)

    def test_truncate_drops_records_at_or_below_watermark(self, wal):
        for seq in range(5):
            wal.append_batch(seq, float(seq + 1), _routed(np.arange(20)), explicit_keys=False)
        wal.truncate(2)
        commit = read_log_records(os.path.join(wal.directory, "commit.wal"))
        assert [record.seq for record in commit.records] == [3, 4]
        shard = read_log_records(os.path.join(wal.directory, "shard-00000.wal"))
        assert [record.seq for record in shard.records] == [3, 4]
        # Appends continue seamlessly after a truncation.
        wal.append_batch(5, 6.0, _routed(np.arange(20)), explicit_keys=False)
        wal.flush()
        commit = read_log_records(os.path.join(wal.directory, "commit.wal"))
        assert [record.seq for record in commit.records] == [3, 4, 5]


class TestCollectReplay:
    def test_uncommitted_shard_records_are_orphans(self, wal):
        from repro.service.wal import _encode_payload

        wal.append_batch(0, 1.0, _routed(np.arange(20)), explicit_keys=False)
        # Simulate the crash window: shard record written, commit never was.
        encoding, chunks = _encode_payload(np.arange(5))
        wal._shards[0].append(
            [struct.pack("<Qd", 1, 2.0), bytes([encoding]), *chunks]
        )
        wal.close()
        plan = WriteAheadLog.attach(wal.directory, num_shards=2).collect_replay(-1)
        assert plan.last_seq == 0
        assert plan.orphaned_shards == [0]
        assert sorted(plan.per_shard) == [0, 1]
        (batches, times) = plan.per_shard[0]
        assert len(batches) == 1 and times == [1.0]

    def test_commit_gap_raises(self, wal):
        for seq in (0, 1, 2):
            wal.append_batch(seq, float(seq + 1), _routed(np.arange(10)), explicit_keys=False)
        wal.close()
        path = os.path.join(wal.directory, "commit.wal")
        data = open(path, "rb").read()
        scan = read_log_records(path)
        middle = scan.records[1]
        with open(path, "wb") as fh:  # excise the middle commit
            fh.write(data[: middle.start] + data[middle.end :])
        attached = WriteAheadLog.attach(wal.directory, num_shards=2)
        with pytest.raises(WALError, match="jump"):
            attached.collect_replay(-1)

    def test_shard_record_without_any_commit_refuses_attach(self, wal):
        # A deleted (or never-copied) commit log must not silently orphan
        # every shard record — their committed prefix is unknowable, so
        # attach refuses with a named layout error instead of quietly
        # dropping committed data as "uncommitted".
        wal.append_batch(0, 1.0, _routed(np.arange(10)), explicit_keys=False)
        wal.close()
        os.unlink(os.path.join(wal.directory, "commit.wal"))
        with pytest.raises(WALLayoutError, match="commit.wal is missing"):
            WriteAheadLog.attach(wal.directory, num_shards=2)
