"""Tests for the co-partitioned and key-value-store reservoir representations."""

from __future__ import annotations

import pytest

from repro.distributed.reservoirs import CoPartitionedReservoir, KeyValueStoreReservoir


class TestCoPartitionedReservoir:
    def test_rejects_bad_partition_count(self):
        with pytest.raises(ValueError):
            CoPartitionedReservoir(0)

    def test_inserts_are_local(self):
        reservoir = CoPartitionedReservoir(3)
        reservoir.insert(["a", "b"], source_partition=1)
        assert reservoir.partition_sizes() == [0, 2, 0]
        assert reservoir.network_items == 0
        assert reservoir.kv_operations == 0
        assert reservoir.local_items == 2

    def test_insert_bad_partition_rejected(self):
        with pytest.raises(IndexError):
            CoPartitionedReservoir(2).insert(["a"], source_partition=5)

    def test_delete_from_partition(self, rng):
        reservoir = CoPartitionedReservoir(2)
        reservoir.insert(list(range(10)), source_partition=0)
        removed = reservoir.delete_from_partition(0, 4, rng)
        assert len(removed) == 4
        assert reservoir.total_items() == 6
        assert set(removed) <= set(range(10))
        assert set(removed).isdisjoint(reservoir.all_items())

    def test_delete_more_than_present(self, rng):
        reservoir = CoPartitionedReservoir(1)
        reservoir.insert([1, 2], source_partition=0)
        removed = reservoir.delete_from_partition(0, 10, rng)
        assert len(removed) == 2
        assert reservoir.total_items() == 0

    def test_delete_per_partition(self, rng):
        reservoir = CoPartitionedReservoir(3)
        for partition in range(3):
            reservoir.insert(list(range(partition * 10, partition * 10 + 5)), partition)
        removed = reservoir.delete_per_partition([1, 2, 3], rng)
        assert len(removed) == 6
        assert reservoir.partition_sizes() == [4, 3, 2]

    def test_counter_reset(self, rng):
        reservoir = CoPartitionedReservoir(1)
        reservoir.insert([1, 2, 3], 0)
        reservoir.reset_counters()
        assert reservoir.local_items == 0
        assert len(reservoir) == 3


class TestKeyValueStoreReservoir:
    def test_every_operation_is_a_kv_round_trip(self, rng):
        reservoir = KeyValueStoreReservoir(4, rng=rng)
        reservoir.insert(list(range(20)), source_partition=0)
        assert reservoir.kv_operations == 20
        assert reservoir.total_items() == 20
        reservoir.delete_per_partition([1, 1, 1, 1], rng)
        assert reservoir.kv_operations >= 20

    def test_hash_placement_spreads_items(self, rng):
        reservoir = KeyValueStoreReservoir(4, rng=0)
        reservoir.insert(list(range(400)), source_partition=0)
        sizes = reservoir.partition_sizes()
        assert sum(sizes) == 400
        assert all(size > 50 for size in sizes)

    def test_network_traffic_for_non_colocated_inserts(self):
        reservoir = KeyValueStoreReservoir(4, rng=1)
        reservoir.insert(list(range(100)), source_partition=0)
        # Roughly 3/4 of inserts land on a different partition than the source.
        assert reservoir.network_items > 50

    def test_items_preserved_across_operations(self, rng):
        reservoir = KeyValueStoreReservoir(3, rng=2)
        reservoir.insert(list(range(30)), source_partition=1)
        removed = reservoir.delete_per_partition([2, 2, 2], rng)
        assert len(removed) == 6
        assert sorted(removed + reservoir.all_items()) == list(range(30))
