"""Tests for D-R-TBS and D-T-TBS on the simulated cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import rtbs_expected_size
from repro.distributed.batches import DistributedBatch
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.drtbs import DistributedRTBS
from repro.distributed.dttbs import DistributedTTBS
from tests.conftest import make_batches


def _run_drtbs(num_batches, batch_size, n, lambda_, workers=4, seed=0, **kwargs):
    cluster = SimulatedCluster(num_workers=workers)
    algorithm = DistributedRTBS(n=n, lambda_=lambda_, cluster=cluster, rng=seed, **kwargs)
    for batch in make_batches(num_batches, batch_size):
        algorithm.process_batch(batch)
    return algorithm


class TestDistributedRTBSConstruction:
    def test_rejects_bad_parameters(self):
        cluster = SimulatedCluster(num_workers=2)
        with pytest.raises(ValueError):
            DistributedRTBS(n=0, lambda_=0.1, cluster=cluster)
        with pytest.raises(ValueError):
            DistributedRTBS(n=5, lambda_=-1.0, cluster=cluster)

    def test_rejects_distributed_decisions_with_kvstore(self):
        cluster = SimulatedCluster(num_workers=2)
        with pytest.raises(ValueError):
            DistributedRTBS(
                n=5, lambda_=0.1, cluster=cluster, reservoir="kvstore", decisions="distributed"
            )


class TestDistributedRTBSStatistics:
    def test_size_bounded_by_capacity(self):
        algorithm = _run_drtbs(60, 30, n=40, lambda_=0.2)
        assert algorithm.full_item_count() <= 40
        assert len(algorithm.realize_sample()) <= 40

    def test_weights_match_serial_recursion(self):
        lambda_ = 0.15
        algorithm = _run_drtbs(25, 12, n=1000, lambda_=lambda_)
        assert algorithm.total_weight == pytest.approx(
            rtbs_expected_size([12] * 25, lambda_, 10**9), rel=1e-9
        )
        assert algorithm.sample_weight == pytest.approx(
            rtbs_expected_size([12] * 25, lambda_, 1000)
        )

    def test_unsaturated_full_count_matches_weight(self):
        algorithm = _run_drtbs(30, 10, n=500, lambda_=0.1)
        assert algorithm.full_item_count() == int(algorithm.sample_weight)

    def test_items_come_from_stream_without_duplicates(self):
        algorithm = _run_drtbs(40, 15, n=30, lambda_=0.3)
        sample = algorithm.sample_items()
        assert len(sample) == len(set(sample))
        assert all(isinstance(item, tuple) and len(item) == 2 for item in sample)

    def test_recency_bias_in_saturated_regime(self):
        algorithm = _run_drtbs(50, 50, n=60, lambda_=0.3, seed=11)
        ages = [50 - batch_index for batch_index, _ in algorithm.sample_items()]
        # Most retained items should be recent when the decay rate is high.
        assert np.mean(ages) < 10

    def test_both_backends_give_similar_expected_sizes(self):
        copartitioned = _run_drtbs(40, 20, n=50, lambda_=0.2, decisions="distributed")
        kvstore = _run_drtbs(
            40, 20, n=50, lambda_=0.2, reservoir="kvstore", decisions="centralized", seed=5
        )
        assert copartitioned.sample_weight == pytest.approx(kvstore.sample_weight)
        assert copartitioned.full_item_count() == kvstore.full_item_count()

    def test_virtual_and_materialized_agree_on_counts(self):
        materialized = _run_drtbs(30, 25, n=40, lambda_=0.25, seed=3)
        cluster = SimulatedCluster(num_workers=4)
        virtual = DistributedRTBS(n=40, lambda_=0.25, cluster=cluster, rng=3)
        for batch_index in range(1, 31):
            virtual.process_batch(DistributedBatch.virtual(25, 4, batch_id=batch_index))
        assert virtual.sample_weight == pytest.approx(materialized.sample_weight)
        assert virtual.full_item_count() == materialized.full_item_count()

    def test_virtual_mode_rejects_item_access(self):
        cluster = SimulatedCluster(num_workers=2)
        algorithm = DistributedRTBS(n=10, lambda_=0.1, cluster=cluster, rng=0)
        algorithm.process_batch(DistributedBatch.virtual(5, 2, batch_id=1))
        with pytest.raises(RuntimeError):
            algorithm.sample_items()
        with pytest.raises(RuntimeError):
            algorithm.realize_sample()

    def test_mixing_modes_rejected(self):
        cluster = SimulatedCluster(num_workers=2)
        algorithm = DistributedRTBS(n=10, lambda_=0.1, cluster=cluster, rng=0)
        algorithm.process_batch([1, 2, 3])
        with pytest.raises(ValueError):
            algorithm.process_batch(DistributedBatch.virtual(5, 2, batch_id=2))


class TestDistributedRTBSCosts:
    @staticmethod
    def _steady_state_runtime(num_batches=40, **kwargs):
        cluster = SimulatedCluster(num_workers=12)
        algorithm = DistributedRTBS(
            n=2_000_000, lambda_=0.07, cluster=cluster, rng=0, **kwargs
        )
        for batch_index in range(1, num_batches + 1):
            algorithm.process_batch(
                DistributedBatch.virtual(1_000_000, 12, batch_id=batch_index)
            )
        return float(np.mean(algorithm.batch_runtimes[-10:]))

    def test_figure7_ordering(self):
        kv_repartition = self._steady_state_runtime(
            reservoir="kvstore", decisions="centralized", join="repartition"
        )
        kv_colocated = self._steady_state_runtime(
            reservoir="kvstore", decisions="centralized", join="colocated"
        )
        centralized_cp = self._steady_state_runtime(
            reservoir="copartitioned", decisions="centralized", join="colocated"
        )
        distributed_cp = self._steady_state_runtime(
            reservoir="copartitioned", decisions="distributed", join="colocated"
        )
        assert kv_repartition > kv_colocated > centralized_cp > distributed_cp

    def test_runtime_recorded_per_batch(self):
        cluster = SimulatedCluster(num_workers=2)
        algorithm = DistributedRTBS(n=100, lambda_=0.1, cluster=cluster, rng=0)
        algorithm.process_batch(DistributedBatch.virtual(50, 2, batch_id=1))
        algorithm.process_batch(DistributedBatch.virtual(50, 2, batch_id=2))
        assert len(algorithm.batch_runtimes) == 2
        assert all(runtime > 0 for runtime in algorithm.batch_runtimes)


class TestDistributedTTBS:
    def test_rejects_bad_parameters(self):
        cluster = SimulatedCluster(num_workers=2)
        with pytest.raises(ValueError):
            DistributedTTBS(n=0, lambda_=0.1, mean_batch_size=10, cluster=cluster)
        with pytest.raises(ValueError):
            DistributedTTBS(n=10, lambda_=-0.1, mean_batch_size=10, cluster=cluster)
        with pytest.raises(ValueError):
            DistributedTTBS(n=10, lambda_=0.1, mean_batch_size=0, cluster=cluster)

    def test_sample_size_converges_to_target(self):
        cluster = SimulatedCluster(num_workers=4)
        algorithm = DistributedTTBS(
            n=200, lambda_=0.1, mean_batch_size=50, cluster=cluster, rng=1
        )
        sizes = []
        for batch in make_batches(150, 50):
            algorithm.process_batch(batch)
            sizes.append(algorithm.sample_size())
        assert np.mean(sizes[50:]) == pytest.approx(200, rel=0.15)

    def test_items_without_duplicates(self):
        cluster = SimulatedCluster(num_workers=3)
        algorithm = DistributedTTBS(
            n=50, lambda_=0.2, mean_batch_size=20, cluster=cluster, rng=2
        )
        for batch in make_batches(40, 20):
            algorithm.process_batch(batch)
        sample = algorithm.sample_items()
        assert len(sample) == len(set(sample))

    def test_virtual_mode_counts_only(self):
        cluster = SimulatedCluster(num_workers=4)
        algorithm = DistributedTTBS(
            n=1000, lambda_=0.07, mean_batch_size=10_000, cluster=cluster, rng=0
        )
        for batch_index in range(1, 30):
            algorithm.process_batch(DistributedBatch.virtual(10_000, 4, batch_id=batch_index))
        assert algorithm.sample_size() > 0
        with pytest.raises(RuntimeError):
            algorithm.sample_items()

    def test_faster_than_drtbs(self):
        # D-T-TBS is embarrassingly parallel, so its per-batch simulated
        # runtime must undercut the best D-R-TBS variant (Figure 7).
        cluster_ttbs = SimulatedCluster(num_workers=12)
        ttbs = DistributedTTBS(
            n=2_000_000, lambda_=0.07, mean_batch_size=1_000_000, cluster=cluster_ttbs, rng=0
        )
        cluster_rtbs = SimulatedCluster(num_workers=12)
        rtbs = DistributedRTBS(n=2_000_000, lambda_=0.07, cluster=cluster_rtbs, rng=0)
        for batch_index in range(1, 25):
            batch = DistributedBatch.virtual(1_000_000, 12, batch_id=batch_index)
            ttbs.process_batch(batch)
            rtbs.process_batch(batch)
        assert np.mean(ttbs.batch_runtimes[-5:]) < np.mean(rtbs.batch_runtimes[-5:])
