"""Tests for the cost model, simulated cluster, and distributed batch container."""

from __future__ import annotations

import pytest

from repro.distributed.batches import DistributedBatch
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel


class TestCostModel:
    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.local(1) > 0
        assert model.network(1) > model.local(1)
        assert model.kv(1) > model.network(1)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            CostModel(local_item_cost=-1.0)

    def test_linear_scaling(self):
        model = CostModel(local_item_cost=2.0)
        assert model.local(10) == 20.0
        assert model.network(0) == 0.0
        assert model.driver_slots(3) == 3 * model.driver_slot_cost
        assert model.driver_counts(4) == 4 * model.driver_count_cost


class TestSimulatedCluster:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SimulatedCluster(num_workers=0)

    def test_stage_duration_uses_slowest_worker(self):
        model = CostModel(stage_overhead=1.0, task_overhead=0.0)
        cluster = SimulatedCluster(num_workers=3, cost_model=model)
        record = cluster.run_stage("stage", worker_times=[1.0, 5.0, 2.0], driver_time=0.5)
        assert record.duration == pytest.approx(1.0 + 0.5 + 5.0)
        assert cluster.elapsed == record.duration

    def test_scalar_worker_time_broadcast(self):
        cluster = SimulatedCluster(num_workers=4)
        record = cluster.run_stage("stage", worker_times=2.0)
        assert record.worker_times == (2.0,) * 4

    def test_wrong_worker_count_rejected(self):
        cluster = SimulatedCluster(num_workers=2)
        with pytest.raises(ValueError):
            cluster.run_stage("stage", worker_times=[1.0, 2.0, 3.0])

    def test_negative_times_rejected(self):
        cluster = SimulatedCluster(num_workers=1)
        with pytest.raises(ValueError):
            cluster.run_stage("stage", worker_times=-1.0)

    def test_elapsed_accumulates_and_resets(self):
        cluster = SimulatedCluster(num_workers=1)
        cluster.run_stage("a")
        cluster.run_stage("b")
        assert len(cluster.stages) == 2
        assert cluster.elapsed > 0
        cluster.reset_clock()
        assert cluster.elapsed == 0.0
        assert cluster.stages == []

    def test_split_evenly(self):
        cluster = SimulatedCluster(num_workers=4)
        assert cluster.split_evenly(10) == [3, 3, 2, 2]
        assert sum(cluster.split_evenly(7)) == 7
        with pytest.raises(ValueError):
            cluster.split_evenly(-1)


class TestDistributedBatch:
    def test_from_items_round_robin(self):
        batch = DistributedBatch.from_items(list(range(7)), num_partitions=3)
        assert batch.is_materialized
        assert batch.partition_sizes == [3, 2, 2]
        assert len(batch) == 7
        assert sorted(batch.all_items()) == list(range(7))

    def test_virtual_batch(self):
        batch = DistributedBatch.virtual(10, num_partitions=4, batch_id=9)
        assert not batch.is_materialized
        assert sum(batch.partition_sizes) == 10
        assert batch.item_at(0, 0) == (9, 0, 0)

    def test_item_at_bounds(self):
        batch = DistributedBatch.from_items([1, 2, 3], num_partitions=2)
        with pytest.raises(IndexError):
            batch.item_at(0, 5)

    def test_sample_positions_unique_and_capped(self, rng):
        batch = DistributedBatch.virtual(20, num_partitions=2)
        positions = batch.sample_positions(0, 100, rng)
        assert len(positions) == batch.partition_sizes[0]
        assert len(set(positions)) == len(positions)

    def test_mismatched_partitions_rejected(self):
        with pytest.raises(ValueError):
            DistributedBatch(partition_sizes=[2], partitions=[[1]])
        with pytest.raises(ValueError):
            DistributedBatch(partition_sizes=[1, 1], partitions=[[1]])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DistributedBatch.virtual(-1, 2)
        with pytest.raises(ValueError):
            DistributedBatch.virtual(5, 0)
        with pytest.raises(ValueError):
            DistributedBatch.from_items([1], 0)
