"""Regenerate the golden per-batch trajectories for the distributed algorithms.

The JSON written by this script pins the exact ``W_t``/``C_t``/runtime
trajectories (and, for D-T-TBS, sample-size trajectories and final samples)
of D-R-TBS and D-T-TBS at fixed seeds. ``test_golden_trajectories.py``
asserts that the current implementations reproduce these numbers bit for
bit, so any refactor of the distributed execution path — such as moving the
data-movement stages onto :mod:`repro.engine` — is proven
trajectory-preserving.

The file was generated from the pre-engine implementations (PR 2 state) and
must only be regenerated when a *deliberate, documented* statistical change
is made:

    PYTHONPATH=src python tests/distributed/generate_golden_trajectories.py
"""

from __future__ import annotations

import json
import os

from repro.distributed.batches import DistributedBatch
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.drtbs import DistributedRTBS
from repro.distributed.dttbs import DistributedTTBS

OUTPUT = os.path.join(os.path.dirname(__file__), "data", "golden_trajectories.json")

DRTBS_VARIANTS = {
    "dist-cp": dict(reservoir="copartitioned", decisions="distributed", join="colocated"),
    "cent-cp": dict(reservoir="copartitioned", decisions="centralized", join="colocated"),
    "cent-kv-cj": dict(reservoir="kvstore", decisions="centralized", join="colocated"),
    "cent-kv-rj": dict(reservoir="kvstore", decisions="centralized", join="repartition"),
}


def _items(batch_index: int, size: int) -> list[str]:
    # Strings survive the JSON round trip unchanged (tuples would come back
    # as lists), keeping golden-sample comparison exact.
    return [f"{batch_index}:{position}" for position in range(size)]


def _irregular_times(count: int) -> list[float]:
    # Strictly increasing, non-unit gaps: exercises the true-gap decay path.
    times, t = [], 0.0
    for index in range(count):
        t += 0.5 + (index % 3) * 0.75
        times.append(t)
    return times


def drtbs_trajectory(
    variant: str,
    *,
    materialized: bool,
    num_batches: int,
    batch_size: int,
    n: int,
    lambda_: float,
    workers: int,
    seed: int,
    irregular_times: bool = False,
    backend=None,
) -> dict:
    cluster = SimulatedCluster(num_workers=workers, backend=backend)
    algorithm = DistributedRTBS(
        n=n, lambda_=lambda_, cluster=cluster, rng=seed, **DRTBS_VARIANTS[variant]
    )
    times = _irregular_times(num_batches) if irregular_times else [None] * num_batches
    total_weights, sample_weights, full_counts, runtimes = [], [], [], []
    for batch_index in range(1, num_batches + 1):
        if materialized:
            batch = DistributedBatch.from_items(
                _items(batch_index, batch_size), workers, batch_id=batch_index
            )
        else:
            batch = DistributedBatch.virtual(batch_size, workers, batch_id=batch_index)
        runtime = algorithm.process_batch(batch, time=times[batch_index - 1])
        total_weights.append(algorithm.total_weight)
        sample_weights.append(algorithm.sample_weight)
        full_counts.append(algorithm.full_item_count())
        runtimes.append(runtime)
    record = {
        "total_weight": total_weights,
        "sample_weight": sample_weights,
        "full_item_count": full_counts,
        "runtime": runtimes,
    }
    if materialized:
        record["final_sample"] = sorted(algorithm.sample_items())
    return record


def dttbs_trajectory(
    *,
    materialized: bool,
    num_batches: int,
    batch_size: int,
    n: int,
    lambda_: float,
    workers: int,
    seed: int,
    irregular_times: bool = False,
    backend=None,
) -> dict:
    cluster = SimulatedCluster(num_workers=workers, backend=backend)
    algorithm = DistributedTTBS(
        n=n,
        lambda_=lambda_,
        mean_batch_size=batch_size,
        cluster=cluster,
        rng=seed,
    )
    times = _irregular_times(num_batches) if irregular_times else [None] * num_batches
    sizes, runtimes = [], []
    for batch_index in range(1, num_batches + 1):
        if materialized:
            batch = DistributedBatch.from_items(
                _items(batch_index, batch_size), workers, batch_id=batch_index
            )
        else:
            batch = DistributedBatch.virtual(batch_size, workers, batch_id=batch_index)
        runtime = algorithm.process_batch(batch, time=times[batch_index - 1])
        sizes.append(algorithm.sample_size())
        runtimes.append(runtime)
    record = {"sample_size": sizes, "runtime": runtimes}
    if materialized:
        record["final_sample"] = sorted(algorithm.sample_items())
    return record


def generate() -> dict:
    golden: dict = {"drtbs": {}, "dttbs": {}}
    for variant in DRTBS_VARIANTS:
        golden["drtbs"][f"{variant}-materialized"] = drtbs_trajectory(
            variant,
            materialized=True,
            num_batches=30,
            batch_size=25,
            n=40,
            lambda_=0.25,
            workers=4,
            seed=3,
        )
        golden["drtbs"][f"{variant}-virtual"] = drtbs_trajectory(
            variant,
            materialized=False,
            num_batches=25,
            batch_size=10_000,
            n=5_000,
            lambda_=0.1,
            workers=4,
            seed=7,
        )
    golden["drtbs"]["dist-cp-materialized-gaps"] = drtbs_trajectory(
        "dist-cp",
        materialized=True,
        num_batches=20,
        batch_size=30,
        n=35,
        lambda_=0.3,
        workers=3,
        seed=11,
        irregular_times=True,
    )
    golden["dttbs"]["materialized"] = dttbs_trajectory(
        materialized=True,
        num_batches=30,
        batch_size=20,
        n=50,
        lambda_=0.2,
        workers=3,
        seed=2,
    )
    golden["dttbs"]["materialized-gaps"] = dttbs_trajectory(
        materialized=True,
        num_batches=20,
        batch_size=25,
        n=60,
        lambda_=0.15,
        workers=4,
        seed=9,
        irregular_times=True,
    )
    golden["dttbs"]["virtual"] = dttbs_trajectory(
        materialized=False,
        num_batches=25,
        batch_size=10_000,
        n=1_000,
        lambda_=0.07,
        workers=4,
        seed=0,
    )
    return golden


if __name__ == "__main__":
    os.makedirs(os.path.dirname(OUTPUT), exist_ok=True)
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(generate(), fh, indent=1)
        fh.write("\n")
    print(f"wrote {OUTPUT}")
