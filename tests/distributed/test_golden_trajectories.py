"""Bit-for-bit trajectory regression tests for the distributed algorithms.

The golden file pins the exact per-batch ``W_t``/``C_t``/runtime numbers
(and final samples) produced by the pre-engine D-R-TBS/D-T-TBS
implementations at fixed seeds. The engine refactor moved the data-movement
stages onto :mod:`repro.engine` executors; these tests prove the move
changed *nothing* statistically: every master RNG draw, every worker stream,
and every priced stage is identical under the simulated backend.

Regenerate the goldens only for a deliberate statistical change:
``PYTHONPATH=src python tests/distributed/generate_golden_trajectories.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from tests.distributed.generate_golden_trajectories import (
    DRTBS_VARIANTS,
    OUTPUT,
    drtbs_trajectory,
    dttbs_trajectory,
)


@pytest.fixture(scope="module")
def golden() -> dict:
    if not os.path.exists(OUTPUT):
        pytest.fail(f"golden trajectory file missing: {OUTPUT}")
    with open(OUTPUT, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _assert_bit_identical(actual: dict, expected: dict, label: str) -> None:
    assert set(actual) == set(expected), label
    for key in expected:
        # Exact equality, including every float: JSON round-trips Python
        # floats through repr, which is lossless.
        assert actual[key] == expected[key], f"{label}: {key} trajectory diverged"


@pytest.mark.parametrize("variant", list(DRTBS_VARIANTS))
def test_drtbs_materialized_trajectories_are_bit_identical(golden, variant):
    actual = drtbs_trajectory(
        variant,
        materialized=True,
        num_batches=30,
        batch_size=25,
        n=40,
        lambda_=0.25,
        workers=4,
        seed=3,
    )
    _assert_bit_identical(
        actual, golden["drtbs"][f"{variant}-materialized"], f"{variant}-materialized"
    )


@pytest.mark.parametrize("variant", list(DRTBS_VARIANTS))
def test_drtbs_virtual_trajectories_are_bit_identical(golden, variant):
    actual = drtbs_trajectory(
        variant,
        materialized=False,
        num_batches=25,
        batch_size=10_000,
        n=5_000,
        lambda_=0.1,
        workers=4,
        seed=7,
    )
    _assert_bit_identical(
        actual, golden["drtbs"][f"{variant}-virtual"], f"{variant}-virtual"
    )


def test_drtbs_irregular_gap_trajectory_is_bit_identical(golden):
    actual = drtbs_trajectory(
        "dist-cp",
        materialized=True,
        num_batches=20,
        batch_size=30,
        n=35,
        lambda_=0.3,
        workers=3,
        seed=11,
        irregular_times=True,
    )
    _assert_bit_identical(
        actual, golden["drtbs"]["dist-cp-materialized-gaps"], "dist-cp-gaps"
    )


def test_dttbs_materialized_trajectory_is_bit_identical(golden):
    actual = dttbs_trajectory(
        materialized=True,
        num_batches=30,
        batch_size=20,
        n=50,
        lambda_=0.2,
        workers=3,
        seed=2,
    )
    _assert_bit_identical(actual, golden["dttbs"]["materialized"], "dttbs-materialized")


def test_dttbs_irregular_gap_trajectory_is_bit_identical(golden):
    actual = dttbs_trajectory(
        materialized=True,
        num_batches=20,
        batch_size=25,
        n=60,
        lambda_=0.15,
        workers=4,
        seed=9,
        irregular_times=True,
    )
    _assert_bit_identical(actual, golden["dttbs"]["materialized-gaps"], "dttbs-gaps")


def test_dttbs_virtual_trajectory_is_bit_identical(golden):
    actual = dttbs_trajectory(
        materialized=False,
        num_batches=25,
        batch_size=10_000,
        n=1_000,
        lambda_=0.07,
        workers=4,
        seed=0,
    )
    _assert_bit_identical(actual, golden["dttbs"]["virtual"], "dttbs-virtual")


class TestThreadBackendEquivalence:
    """The engine's thread backend must reproduce the serial goldens exactly.

    All randomness is drawn driver-side (D-R-TBS plans) or from private
    per-worker streams (D-T-TBS), so running the apply tasks on a thread
    pool changes nothing — including the priced runtimes, which are backend
    independent by construction.
    """

    def test_drtbs_on_thread_backend_matches_golden(self, golden):
        from repro.engine import ThreadPoolExecutor

        with ThreadPoolExecutor(3) as backend:
            actual = drtbs_trajectory(
                "cent-kv-rj",
                materialized=True,
                num_batches=30,
                batch_size=25,
                n=40,
                lambda_=0.25,
                workers=4,
                seed=3,
                backend=backend,
            )
        _assert_bit_identical(
            actual, golden["drtbs"]["cent-kv-rj-materialized"], "cent-kv-rj-threads"
        )

    def test_dttbs_on_thread_backend_matches_golden(self, golden):
        from repro.engine import ThreadPoolExecutor

        with ThreadPoolExecutor(3) as backend:
            actual = dttbs_trajectory(
                materialized=True,
                num_batches=30,
                batch_size=20,
                n=50,
                lambda_=0.2,
                workers=3,
                seed=2,
                backend=backend,
            )
        _assert_bit_identical(actual, golden["dttbs"]["materialized"], "dttbs-threads")


class TestProcessBackendEquivalence:
    """The persistent-worker process backend must reproduce the goldens too.

    Reservoir partitions (D-R-TBS) and worker sample partitions (D-T-TBS)
    live *resident* in the transport workers; the master's plan draws and
    the workers' private streams are unchanged, so every ``W_t``/``C_t``/
    sample trajectory — and every priced runtime — is bit-identical to the
    serial backend. (The golden suite previously had to skip the process
    backend entirely: closure tasks could not cross a process boundary.)
    """

    @pytest.mark.parametrize("variant", list(DRTBS_VARIANTS))
    def test_drtbs_on_process_backend_matches_golden(self, golden, variant):
        from repro.engine import ProcessPoolExecutor

        with ProcessPoolExecutor(2) as backend:
            actual = drtbs_trajectory(
                variant,
                materialized=True,
                num_batches=30,
                batch_size=25,
                n=40,
                lambda_=0.25,
                workers=4,
                seed=3,
                backend=backend,
            )
        _assert_bit_identical(
            actual,
            golden["drtbs"][f"{variant}-materialized"],
            f"{variant}-process",
        )

    def test_drtbs_irregular_gaps_on_process_backend(self, golden):
        from repro.engine import ProcessPoolExecutor

        with ProcessPoolExecutor(2) as backend:
            actual = drtbs_trajectory(
                "dist-cp",
                materialized=True,
                num_batches=20,
                batch_size=30,
                n=35,
                lambda_=0.3,
                workers=3,
                seed=11,
                irregular_times=True,
                backend=backend,
            )
        _assert_bit_identical(
            actual, golden["drtbs"]["dist-cp-materialized-gaps"], "dist-cp-gaps-process"
        )

    def test_dttbs_on_process_backend_matches_golden(self, golden):
        from repro.engine import ProcessPoolExecutor

        with ProcessPoolExecutor(2) as backend:
            actual = dttbs_trajectory(
                materialized=True,
                num_batches=30,
                batch_size=20,
                n=50,
                lambda_=0.2,
                workers=3,
                seed=2,
                backend=backend,
            )
        _assert_bit_identical(actual, golden["dttbs"]["materialized"], "dttbs-process")

    def test_dttbs_virtual_on_process_backend_matches_golden(self, golden):
        # Virtual batches carry only counts; the updates stay driver-side
        # (same draw order) but the priced stages are charged identically.
        from repro.engine import ProcessPoolExecutor

        with ProcessPoolExecutor(2) as backend:
            actual = dttbs_trajectory(
                materialized=False,
                num_batches=25,
                batch_size=10_000,
                n=1_000,
                lambda_=0.07,
                workers=4,
                seed=0,
                backend=backend,
            )
        _assert_bit_identical(actual, golden["dttbs"]["virtual"], "dttbs-virtual-process")
