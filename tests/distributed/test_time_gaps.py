"""Regression tests: distributed samplers decay by the true batch-time gap.

The seed implementations hardcoded ``decay = e^{-lambda}`` per batch, so any
deployment whose batches do not arrive at exactly ``t = 1, 2, 3, ...``
applied the wrong decay. These tests pin the corrected contract: with
explicit arrival times, the D-R-TBS ``W_t``/``C_t`` trajectory matches the
single-node R-TBS bookkeeping exactly, and D-T-TBS retention uses the
per-gap survival probability.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.rtbs import RTBS
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.drtbs import DistributedRTBS
from repro.distributed.dttbs import DistributedTTBS


def _batches(sizes: list[int]) -> list[list[int]]:
    batches, counter = [], 0
    for size in sizes:
        batches.append(list(range(counter, counter + size)))
        counter += size
    return batches


class TestDistributedRTBSTimeGaps:
    @pytest.mark.parametrize(
        "times",
        [
            [0.5, 1.0, 3.25, 3.5, 7.0, 11.125, 12.0, 20.0],
            [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0],
        ],
    )
    def test_non_unit_gaps_match_single_node_trajectory(self, times):
        """W_t and C_t depend only on batch sizes and gaps, so the
        distributed and serial bookkeeping must agree to the last bit."""
        lambda_ = 0.3
        sizes = [15, 40, 5, 0, 25, 10, 30, 20]
        serial = RTBS(n=40, lambda_=lambda_, rng=0)
        cluster = SimulatedCluster(num_workers=4)
        distributed = DistributedRTBS(n=40, lambda_=lambda_, cluster=cluster, rng=1)
        for batch, time in zip(_batches(sizes), times):
            serial.process_batch(batch, time=time)
            distributed.process_batch(batch, time=time)
            assert distributed.total_weight == pytest.approx(
                serial.total_weight, rel=1e-12, abs=1e-12
            )
            assert distributed.sample_weight == pytest.approx(
                serial.sample_weight, rel=1e-12, abs=1e-12
            )
            assert distributed.is_saturated == serial.is_saturated
            assert distributed.time == serial.time

    def test_default_times_preserve_unit_gap_behaviour(self):
        lambda_ = 0.2
        sizes = [10, 10, 10, 10, 10]
        explicit = DistributedRTBS(
            n=30, lambda_=lambda_, cluster=SimulatedCluster(num_workers=2), rng=0
        )
        implicit = DistributedRTBS(
            n=30, lambda_=lambda_, cluster=SimulatedCluster(num_workers=2), rng=0
        )
        for index, batch in enumerate(_batches(sizes)):
            explicit.process_batch(batch, time=float(index + 1))
            implicit.process_batch(batch)
            assert implicit.total_weight == explicit.total_weight
            assert implicit.sample_weight == explicit.sample_weight

    def test_process_stream_accepts_times(self):
        lambda_ = 0.25
        sizes = [12, 8, 20]
        times = [1.5, 2.0, 9.0]
        serial = RTBS(n=500, lambda_=lambda_, rng=0)
        serial.process_stream(_batches(sizes), times=times)
        distributed = DistributedRTBS(
            n=500, lambda_=lambda_, cluster=SimulatedCluster(num_workers=3), rng=0
        )
        distributed.process_stream(_batches(sizes), times=times)
        assert distributed.total_weight == pytest.approx(serial.total_weight, rel=1e-12)
        assert distributed.sample_weight == pytest.approx(serial.sample_weight, rel=1e-12)

    def test_times_iterable_must_cover_batches(self):
        distributed = DistributedRTBS(
            n=10, lambda_=0.1, cluster=SimulatedCluster(num_workers=2), rng=0
        )
        with pytest.raises(ValueError, match="exhausted"):
            distributed.process_stream(_batches([5, 5]), times=[1.0])

    def test_non_increasing_times_rejected(self):
        distributed = DistributedRTBS(
            n=10, lambda_=0.1, cluster=SimulatedCluster(num_workers=2), rng=0
        )
        distributed.process_batch([1, 2], time=3.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            distributed.process_batch([3], time=3.0)
        fresh = DistributedRTBS(
            n=10, lambda_=0.1, cluster=SimulatedCluster(num_workers=2), rng=0
        )
        with pytest.raises(ValueError, match="first batch time"):
            fresh.process_batch([1], time=-1.0)


class TestDistributedTTBSTimeGaps:
    def test_large_gap_decimates_retention(self):
        """After a 50-unit silence with lambda = 0.2, survival probability is
        e^{-10} ~ 5e-5 — the old hardcoded e^{-0.2} would keep ~82%."""
        cluster = SimulatedCluster(num_workers=4)
        algorithm = DistributedTTBS(
            n=400, lambda_=0.2, mean_batch_size=500, cluster=cluster, rng=0
        )
        algorithm.process_batch(list(range(500)), time=1.0)
        size_before = algorithm.sample_size()
        # q = n (1 - e^{-0.2}) / 500 ~ 0.145 -> ~72 of 500 accepted.
        assert size_before > 40
        algorithm.process_batch([], time=51.0)
        # Binomial(size_before, e^-10): expected < 0.01 survivors.
        assert algorithm.sample_size() <= 2

    def test_unit_gap_statistics_unchanged(self):
        lambda_, batch = 0.2, 500
        cluster = SimulatedCluster(num_workers=4)
        algorithm = DistributedTTBS(
            n=400, lambda_=lambda_, mean_batch_size=batch, cluster=cluster, rng=3
        )
        for index in range(30):
            algorithm.process_batch(list(range(index * batch, (index + 1) * batch)))
        # Theorem 3.1: the size drifts to the target n.
        assert algorithm.sample_size() == pytest.approx(400, rel=0.25)

    def test_lambda_zero_rejected(self):
        cluster = SimulatedCluster(num_workers=2)
        with pytest.raises(ValueError, match="acceptance probability of 0"):
            DistributedTTBS(n=10, lambda_=0.0, mean_batch_size=5, cluster=cluster)

    def test_retention_probability_uses_true_gap(self):
        lambda_ = 0.1
        cluster = SimulatedCluster(num_workers=2)
        algorithm = DistributedTTBS(
            n=100, lambda_=lambda_, mean_batch_size=100, cluster=cluster, rng=0
        )
        algorithm.process_batch(list(range(100)), time=2.0)
        assert algorithm.time == 2.0
        runtimes = algorithm.process_stream(
            [_batches([100])[0]], times=[4.5]
        )
        assert len(runtimes) == 1
        assert algorithm.time == 4.5


class TestSerialFirstBatchDecayRegression:
    def test_initial_items_decay_by_explicit_first_time(self):
        """The _advance_time regression: a first batch at explicit time t
        decays pre-loaded items by e^{-lambda t}, not e^{-lambda}."""
        lambda_, t = 0.4, 3.5
        sampler = RTBS(n=100, lambda_=lambda_, initial_items=[1, 2, 3, 4, 5], rng=0)
        sampler.process_batch([], time=t)
        assert sampler.total_weight == pytest.approx(5.0 * math.exp(-lambda_ * t))
        # Ages are measured from the time-0 origin, never negative.
        assert (sampler.sample_ages() >= 0).all()
        assert sampler.sample_ages().max() == pytest.approx(t)

    def test_first_batch_must_arrive_after_time_zero(self):
        sampler = RTBS(n=10, lambda_=0.1, initial_items=[1], rng=0)
        with pytest.raises(ValueError, match="first batch time"):
            sampler.process_batch([2], time=0.0)
