"""Test package."""
