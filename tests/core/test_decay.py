"""Unit tests for decay functions and decay-rate calibration helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.decay import (
    ExponentialDecay,
    appearance_ratio,
    lambda_for_retention,
    lambda_for_survival,
)


class TestExponentialDecay:
    def test_factor_at_one_unit(self):
        decay = ExponentialDecay(0.1)
        assert decay.factor(1.0) == pytest.approx(math.exp(-0.1))

    def test_factor_is_multiplicative_over_time(self):
        decay = ExponentialDecay(0.3)
        assert decay.factor(2.0) == pytest.approx(decay.factor(1.0) ** 2)

    def test_zero_rate_means_no_decay(self):
        decay = ExponentialDecay(0.0)
        assert decay.factor(100.0) == 1.0
        assert decay.half_life() == math.inf

    def test_half_life(self):
        decay = ExponentialDecay(0.07)
        assert decay.factor(decay.half_life()) == pytest.approx(0.5)

    def test_retention_probability(self):
        assert ExponentialDecay(0.2).retention_probability == pytest.approx(math.exp(-0.2))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDecay(-0.1)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0.1).factor(-1.0)

    def test_weight_at_age_matches_factor(self):
        decay = ExponentialDecay(0.5)
        assert decay.weight_at_age(3.0) == decay.factor(3.0)


class TestLambdaForRetention:
    def test_paper_example(self):
        # "by setting lambda = 0.058, around 10% of the data items from 40
        # batches ago are included" (Section 1).
        assert lambda_for_retention(0.1, 40) == pytest.approx(0.0576, abs=1e-3)

    def test_round_trip(self):
        lam = lambda_for_retention(0.25, 12)
        assert math.exp(-lam * 12) == pytest.approx(0.25)

    def test_full_retention_gives_zero(self):
        assert lambda_for_retention(1.0, 10) == pytest.approx(0.0)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(ValueError):
            lambda_for_retention(fraction, 10)

    def test_invalid_age_rejected(self):
        with pytest.raises(ValueError):
            lambda_for_retention(0.5, 0)


class TestLambdaForSurvival:
    def test_paper_example(self):
        # n=1000 items, k=150 batches ago, survival probability q=0.01
        # gives lambda ~= 0.077 (Section 1).
        assert lambda_for_survival(1000, 150, 0.01) == pytest.approx(0.077, abs=2e-3)

    def test_round_trip(self):
        num_items, age, probability = 50, 30, 0.2
        lam = lambda_for_survival(num_items, age, probability)
        item_survival = math.exp(-lam * age)
        at_least_one = 1.0 - (1.0 - item_survival) ** num_items
        assert at_least_one == pytest.approx(probability, rel=1e-6)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_num_items_rejected(self, bad):
        with pytest.raises(ValueError):
            lambda_for_survival(bad, 10, 0.1)

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_invalid_probability_rejected(self, bad):
        with pytest.raises(ValueError):
            lambda_for_survival(10, 10, bad)


class TestAppearanceRatio:
    def test_matches_criterion(self):
        assert appearance_ratio(0.1, older_time=3.0, newer_time=7.0) == pytest.approx(
            math.exp(-0.4)
        )

    def test_equal_times_give_one(self):
        assert appearance_ratio(0.5, 4.0, 4.0) == 1.0

    def test_wrong_order_rejected(self):
        with pytest.raises(ValueError):
            appearance_ratio(0.5, 5.0, 4.0)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            appearance_ratio(-0.5, 1.0, 2.0)
