"""Unit tests for the sampler-level resharding primitives.

Covers the latent split/merge machinery (inclusion probabilities and weight
conservation through a split→merge round trip), the per-sampler
``reshard_split``/``reshard_absorb`` implementations, the integer
apportionment helper, and the orchestrator's validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RTBS,
    TTBS,
    AResSampler,
    BatchedChao,
    BatchedReservoir,
    BTBS,
    LatentSample,
    Sampler,
    SlidingWindow,
    TimeBasedSlidingWindow,
    UniformReservoir,
    apportion_integer,
    merge_latent_samples,
    reshard_samplers,
)
from repro.core.resharding import apportion_integer as apportion  # noqa: F401


# ----------------------------------------------------------------------
# latent split / merge
# ----------------------------------------------------------------------
class TestLatentSplitMerge:
    def _latent_with_partial(self, count=10, fraction=0.4):
        latent = LatentSample.from_full_items(np.arange(count))
        return LatentSample(
            latent._full,
            LatentSample.from_full_items(np.array([999]))._full,
            count + fraction,
        )

    def test_split_pieces_are_valid_latents_and_conserve_weight(self):
        latent = self._latent_with_partial(10, 0.4)
        destinations = np.arange(10) % 3
        pieces = latent.split(destinations, partial_destination=1)
        assert set(pieces) == {0, 1, 2}
        total = sum(piece.weight for piece in pieces.values())
        assert total == pytest.approx(latent.weight)
        for destination, piece in pieces.items():
            piece.check_invariants()
            routed = np.flatnonzero(destinations == destination)
            assert piece.full == [int(i) for i in np.arange(10)[routed]]
        assert pieces[1].has_partial
        assert pieces[1].fraction == pytest.approx(0.4)

    def test_split_requires_partial_destination(self):
        latent = self._latent_with_partial()
        with pytest.raises(ValueError, match="partial item"):
            latent.split(np.zeros(10, dtype=np.int64), partial_destination=None)

    def test_split_rejects_wrong_destination_count(self):
        latent = LatentSample.from_full_items(np.arange(5))
        with pytest.raises(ValueError, match="destinations"):
            latent.split(np.zeros(3, dtype=np.int64), partial_destination=None)

    def test_merge_inverts_split_weight(self):
        rng = np.random.default_rng(0)
        latent = self._latent_with_partial(12, 0.7)
        pieces = latent.split(np.arange(12) % 4, partial_destination=2)
        merged = merge_latent_samples(
            [pieces[d] for d in sorted(pieces)], rng=rng
        )
        merged.check_invariants()
        assert merged.weight == pytest.approx(latent.weight)
        assert sorted(merged.items()) == sorted(latent.items())

    def test_merge_folds_many_partials_with_promotion(self):
        # Five pieces each carrying fraction 0.5: total fractional mass 2.5
        # -> two promotions plus one surviving 0.5 partial. Weight must be
        # conserved and invariants restored for any RNG outcome.
        rng = np.random.default_rng(3)
        pieces = [
            LatentSample(
                LatentSample.empty()._full,
                LatentSample.from_full_items(np.array([100 + k]))._full,
                0.5,
            )
            for k in range(5)
        ]
        merged = merge_latent_samples(pieces, rng=rng)
        merged.check_invariants()
        assert merged.weight == pytest.approx(2.5)
        assert merged.full_count == 2
        assert merged.has_partial

    def test_merge_preserves_marginal_inclusion_probabilities(self):
        # Two fractional items with f1=0.3, f2=0.9 merge to weight 1.2: one
        # promotion. Empirically the marginals must stay 0.3 and 0.9.
        trials = 20_000
        rng = np.random.default_rng(11)
        hits = {1: 0, 2: 0}
        for _ in range(trials):
            piece1 = LatentSample(
                LatentSample.empty()._full,
                LatentSample.from_full_items(np.array([1]))._full,
                0.3,
            )
            piece2 = LatentSample(
                LatentSample.empty()._full,
                LatentSample.from_full_items(np.array([2]))._full,
                0.9,
            )
            merged = merge_latent_samples([piece1, piece2], rng=rng)
            realized = merged.realize(rng)
            for item in realized:
                hits[int(item)] += 1
        assert hits[1] / trials == pytest.approx(0.3, abs=0.02)
        assert hits[2] / trials == pytest.approx(0.9, abs=0.02)


# ----------------------------------------------------------------------
# apportionment
# ----------------------------------------------------------------------
class TestApportionInteger:
    def test_sums_exactly_and_is_proportional(self):
        shares = apportion_integer(100, np.array([1.0, 1.0, 2.0]))
        assert shares.sum() == 100
        assert shares.tolist() == [25, 25, 50]

    def test_largest_remainder_breaks_ties_deterministically(self):
        shares = apportion_integer(10, np.array([1.0, 1.0, 1.0]))
        assert shares.sum() == 10
        assert shares.tolist() == [4, 3, 3]

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            apportion_integer(-1, np.array([1.0]))
        with pytest.raises(ValueError):
            apportion_integer(5, np.array([]))
        with pytest.raises(ValueError):
            apportion_integer(5, np.array([0.0, 0.0]))


# ----------------------------------------------------------------------
# per-sampler split/absorb via the orchestrator
# ----------------------------------------------------------------------
def _ingest(sampler, num_batches=8, size=60, start=0):
    for index in range(num_batches):
        sampler.process_batch(
            np.arange(start + index * size, start + (index + 1) * size),
            time=float(index + 1),
        )
    return sampler


def _destinations_mod(num_parts):
    def fn(items):
        return np.asarray([int(item) % num_parts for item in items], dtype=np.int64)

    return fn


_FACTORIES = {
    "rtbs": lambda rng: RTBS(n=40, lambda_=0.2, rng=rng),
    "ttbs": lambda rng: TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=rng),
    "btbs": lambda rng: BTBS(lambda_=0.2, rng=rng),
    "brs": lambda rng: BatchedReservoir(n=40, rng=rng),
    "uniform": lambda rng: UniformReservoir(n=40, rng=rng),
    "chao": lambda rng: BatchedChao(n=40, lambda_=0.2, rng=rng),
    "ares": lambda rng: AResSampler(n=40, lambda_=0.2, rng=rng),
    "tbsw": lambda rng: TimeBasedSlidingWindow(window=3.0, rng=rng),
}


@pytest.mark.parametrize("name", sorted(_FACTORIES))
class TestSamplerReshardProtocol:
    def test_split_merge_re_homes_every_item(self, name):
        factory = _FACTORIES[name]
        rng = np.random.default_rng(5)
        sources = {
            shard: _ingest(factory(np.random.default_rng(shard)), start=shard * 10_000)
            for shard in range(3)
        }
        retained = sorted(
            item for sampler in sources.values() for item in sampler.reshard_items().tolist()
        )
        merged = reshard_samplers(
            sources, _destinations_mod(4), lambda d: factory(np.random.default_rng(100 + d)), 4
        )
        for destination, sampler in merged.items():
            for item in sampler.reshard_items().tolist():
                assert int(item) % 4 == destination
            assert sampler.time == 8.0
            assert sampler.batches_seen == 8
        survivors = sorted(
            item
            for sampler in merged.values()
            for item in sampler.reshard_items().tolist()
        )
        # No destination exceeded its capacity here, so re-homing keeps
        # every retained item (capacity-bound samplers may subsample under
        # skew, which mod-4 routing of 3 sources into 4 parts avoids).
        if name not in ("brs", "uniform", "chao", "ares", "rtbs"):
            assert survivors == retained
        else:
            assert set(survivors) <= set(retained)

    def test_total_weight_is_conserved(self, name):
        factory = _FACTORIES[name]
        sources = {
            shard: _ingest(factory(np.random.default_rng(shard)), start=shard * 10_000)
            for shard in range(3)
        }
        before = sum(sampler.total_weight for sampler in sources.values())
        merged = reshard_samplers(
            sources, _destinations_mod(5), lambda d: factory(np.random.default_rng(50 + d)), 5
        )
        after = sum(sampler.total_weight for sampler in merged.values())
        if np.isnan(before):
            assert np.isnan(after)
        else:
            assert after == pytest.approx(before, rel=1e-12)

    def test_resharded_samplers_keep_working(self, name):
        factory = _FACTORIES[name]
        sources = {
            shard: _ingest(factory(np.random.default_rng(shard)), start=shard * 10_000)
            for shard in range(2)
        }
        merged = reshard_samplers(
            sources, _destinations_mod(3), lambda d: factory(np.random.default_rng(70 + d)), 3
        )
        for sampler in merged.values():
            sampler.process_batch(np.arange(100), time=10.0)
            assert sampler.time == 10.0


class TestRTBSUnderfull:
    def test_underfull_shard_refills_toward_capacity(self):
        # Split one saturated reservoir in two: each destination inherits
        # about half the items but half the (much larger) history weight,
        # the underfull state. Continued ingest must refill toward n while
        # conserving the W bookkeeping rules.
        source = _ingest(RTBS(n=40, lambda_=0.2, rng=np.random.default_rng(0)), 12)
        assert source.is_saturated
        merged = reshard_samplers(
            {0: source},
            _destinations_mod(2),
            lambda d: RTBS(n=40, lambda_=0.2, rng=np.random.default_rng(d)),
            2,
        )
        for sampler in merged.values():
            assert sampler.total_weight > sampler.expected_sample_size  # underfull
            for index in range(30):
                sampler.process_batch(np.arange(60), time=13.0 + index)
            assert sampler.expected_sample_size == pytest.approx(40.0)

    def test_merge_overshoot_downsamples_to_capacity(self):
        # Everything routed to one destination: 40 + 40 items into one
        # 40-capacity reservoir must downsample via Algorithm 3.
        sources = {
            shard: _ingest(
                RTBS(n=40, lambda_=0.2, rng=np.random.default_rng(shard)),
                start=shard * 10_000,
            )
            for shard in range(2)
        }
        before_w = sum(s.total_weight for s in sources.values())
        merged = reshard_samplers(
            sources,
            lambda items: np.zeros(len(items), dtype=np.int64),
            lambda d: RTBS(n=40, lambda_=0.2, rng=np.random.default_rng(9)),
            1,
        )
        (sampler,) = merged.values()
        assert sampler.expected_sample_size == pytest.approx(40.0)
        assert sampler.total_weight == pytest.approx(before_w)
        assert len(sampler.sample_items()) <= 41


class TestOrchestratorValidation:
    def test_sources_must_share_a_clock(self):
        fast = _ingest(TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=0), 8)
        slow = _ingest(TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=1), 4)
        with pytest.raises(ValueError, match="different times"):
            reshard_samplers(
                {0: fast, 1: slow},
                _destinations_mod(2),
                lambda d: TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=d),
                2,
            )

    def test_destination_ids_are_range_checked(self):
        sampler = _ingest(TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=0), 4)
        with pytest.raises(ValueError, match="must lie in"):
            reshard_samplers(
                {0: sampler},
                lambda items: np.full(len(items), 7, dtype=np.int64),
                lambda d: TTBS(n=40, lambda_=0.2, mean_batch_size=60, rng=d),
                2,
            )

    def test_count_based_sliding_window_does_not_reshard(self):
        window = SlidingWindow(n=10, rng=0)
        window.process_batch(np.arange(20))
        with pytest.raises(NotImplementedError, match="SlidingWindow"):
            reshard_samplers(
                {0: window},
                _destinations_mod(2),
                lambda d: SlidingWindow(n=10, rng=d),
                2,
            )

    def test_empty_sources_reshard_to_nothing(self):
        assert reshard_samplers({}, _destinations_mod(2), lambda d: None, 2) == {}

    def test_base_sampler_protocol_raises_by_default(self):
        sampler = Sampler()
        with pytest.raises(NotImplementedError, match="resharding"):
            sampler.reshard_items()
        with pytest.raises(NotImplementedError, match="resharding"):
            sampler.reshard_split(np.empty(0, dtype=np.int64), 2)
        with pytest.raises(NotImplementedError, match="resharding"):
            sampler.reshard_absorb([])
