"""Tests for T-TBS (Algorithm 1, Theorem 3.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.analysis import ttbs_expected_size, ttbs_stationary_variance
from repro.core.ttbs import TTBS
from tests.conftest import empirical_inclusion_by_batch, make_batches


class TestConstruction:
    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError):
            TTBS(n=0, lambda_=0.1, mean_batch_size=10)

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            TTBS(n=10, lambda_=-0.1, mean_batch_size=10)

    def test_rejects_non_positive_mean_batch_size(self):
        with pytest.raises(ValueError):
            TTBS(n=10, lambda_=0.1, mean_batch_size=0)

    def test_rejects_zero_decay_rate(self):
        # Regression: lambda_ = 0 used to build a sampler whose acceptance
        # probability is 0 — it silently never accepted a single item.
        with pytest.raises(ValueError, match="acceptance probability of 0"):
            TTBS(n=10, lambda_=0.0, mean_batch_size=10)

    def test_rejects_infeasible_configuration(self):
        # b < n (1 - e^-lambda): items decay faster than they arrive.
        with pytest.raises(ValueError):
            TTBS(n=1000, lambda_=0.5, mean_batch_size=10)

    def test_infeasible_allowed_when_not_enforced(self):
        sampler = TTBS(n=1000, lambda_=0.5, mean_batch_size=10, enforce_feasibility=False)
        assert sampler.acceptance_probability == 1.0

    def test_acceptance_probability_formula(self):
        n, lambda_, b = 200, 0.1, 100
        sampler = TTBS(n=n, lambda_=lambda_, mean_batch_size=b)
        assert sampler.acceptance_probability == pytest.approx(n * (1 - math.exp(-lambda_)) / b)


class TestExpectedSize:
    def test_expected_size_converges_to_target(self):
        n, lambda_, b = 150, 0.1, 50
        trials, batches = 300, 80
        final_sizes = []
        for trial in range(trials):
            sampler = TTBS(n=n, lambda_=lambda_, mean_batch_size=b, rng=trial)
            for batch in make_batches(batches, b):
                sampler.process_batch(batch)
            final_sizes.append(len(sampler))
        assert np.mean(final_sizes) == pytest.approx(n, rel=0.05)

    def test_theoretical_expected_size_helper(self):
        sampler = TTBS(n=100, lambda_=0.2, mean_batch_size=50)
        # E[C_t] = n + p^t (C_0 - n) with C_0 = 0.
        assert sampler.theoretical_expected_size(0) == 0.0
        assert sampler.theoretical_expected_size(5) == pytest.approx(
            ttbs_expected_size(100, 0.2, 5, 0.0)
        )
        with pytest.raises(ValueError):
            sampler.theoretical_expected_size(-1)

    def test_variance_formula_is_positive_and_finite(self):
        variance = ttbs_stationary_variance(1000, 0.1, 100, 50.0)
        assert 0 < variance < 10_000

    def test_sample_size_fluctuates_unlike_rtbs(self, rng):
        sampler = TTBS(n=100, lambda_=0.1, mean_batch_size=100, rng=rng)
        sizes = []
        for batch in make_batches(200, 100):
            sizes.append(len(sampler.process_batch(batch)))
        # Theorem 3.1(i): every size is hit infinitely often, so the
        # trajectory cannot be constant once near the target.
        steady = sizes[50:]
        assert len(set(steady)) > 5
        assert max(steady) > 100 > min(steady)


class TestAppearanceProbabilities:
    def test_relative_criterion_holds(self):
        # Pr[x in S_t] = q e^{-lambda (t - s)} for x arriving in batch s, so
        # the ratio between consecutive batches is e^{-lambda}.
        trials, num_batches, batch_size, n, lambda_ = 600, 10, 50, 100, 0.3
        samples = []
        for trial in range(trials):
            sampler = TTBS(n=n, lambda_=lambda_, mean_batch_size=batch_size, rng=trial)
            for batch in make_batches(num_batches, batch_size):
                sampler.process_batch(batch)
            samples.append(sampler.sample_items())
        empirical = empirical_inclusion_by_batch(samples, num_batches, batch_size)
        q = n * (1 - math.exp(-lambda_)) / batch_size
        for batch_index in range(4, num_batches + 1):
            theory = q * math.exp(-lambda_ * (num_batches - batch_index))
            assert empirical[batch_index - 1] == pytest.approx(theory, abs=0.06)


class TestBehaviour:
    def test_no_duplicates_and_items_from_stream(self, rng):
        sampler = TTBS(n=50, lambda_=0.2, mean_batch_size=20, rng=rng)
        seen: set = set()
        for batch in make_batches(60, 20):
            seen.update(batch)
            sample = sampler.process_batch(batch)
            assert len(sample) == len(set(sample))
            assert set(sample) <= seen

    def test_overflows_when_batches_grow(self, rng):
        # Figure 1(a): growing batches overflow T-TBS because the assumed
        # mean batch size is stale.
        sampler = TTBS(n=100, lambda_=0.05, mean_batch_size=20, rng=rng)
        size = 20
        for batch_index in range(1, 200):
            sampler.process_batch([(batch_index, i) for i in range(int(size))])
            if batch_index > 50:
                size *= 1.05
        assert len(sampler) > 150

    def test_empty_batches_only_decay(self, rng):
        sampler = TTBS(n=100, lambda_=0.3, mean_batch_size=50, rng=rng)
        sampler.process_batch(list(range(100)))
        before = len(sampler)
        for _ in range(5):
            sampler.process_batch([])
        assert len(sampler) < before
