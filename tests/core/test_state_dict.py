"""Round-trip checkpoint/restore equivalence for every sampler class.

The contract under test: snapshot a sampler mid-stream, restore it in a
fresh context, feed both the original and the restored sampler the same
remaining stream, and every observable — realized samples, ``W_t``/``C_t``
bookkeeping, time, RNG-driven trajectories — must be *bit-identical* to the
uninterrupted run. No statistical tolerance anywhere in this file.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    RTBS,
    TTBS,
    AResSampler,
    BatchedChao,
    BatchedReservoir,
    BTBS,
    LatentSample,
    Sampler,
    SlidingWindow,
    TimeBasedSlidingWindow,
    UniformReservoir,
    resolve_sampler_type,
)

SAMPLER_FACTORIES = {
    "RTBS": lambda: RTBS(n=60, lambda_=0.25, rng=11),
    "RTBS-unsaturated": lambda: RTBS(n=5000, lambda_=0.05, rng=12),
    "TTBS": lambda: TTBS(n=60, lambda_=0.25, mean_batch_size=25, rng=13),
    "BatchedChao": lambda: BatchedChao(n=60, lambda_=0.25, rng=14),
    "AResSampler": lambda: AResSampler(n=60, lambda_=0.25, rng=15),
    "BTBS": lambda: BTBS(lambda_=0.25, rng=16),
    "BatchedReservoir": lambda: BatchedReservoir(n=60, rng=17),
    "UniformReservoir": lambda: UniformReservoir(n=60, rng=18),
    "SlidingWindow": lambda: SlidingWindow(n=60, rng=19),
    "TimeBasedSlidingWindow": lambda: TimeBasedSlidingWindow(window=4.0, rng=20),
}


def _batches(count: int, size: int = 25, start: int = 0) -> list[list[int]]:
    return [
        list(range(start + index * size, start + (index + 1) * size))
        for index in range(count)
    ]


def _weights_equal(a: float, b: float) -> bool:
    return (math.isnan(a) and math.isnan(b)) or a == b


@pytest.mark.parametrize("name", sorted(SAMPLER_FACTORIES))
class TestRoundTripEquivalence:
    def test_restored_sampler_continues_identical_trajectory(self, name):
        prefix = _batches(12)
        suffix = _batches(12, start=12 * 25)

        uninterrupted = SAMPLER_FACTORIES[name]()
        for batch in prefix:
            uninterrupted.process_batch(batch)
        snapshot = uninterrupted.state_dict()

        restored = Sampler.from_state_dict(snapshot)
        assert type(restored) is type(uninterrupted)
        assert restored.time == uninterrupted.time
        assert restored.batches_seen == uninterrupted.batches_seen
        assert restored.sample_items() == uninterrupted.sample_items()

        # Continue both; every post-restore batch must agree bit for bit.
        for batch in suffix:
            sample_a = uninterrupted.process_batch(batch)
            sample_b = restored.process_batch(batch)
            assert sample_a == sample_b
            assert _weights_equal(uninterrupted.total_weight, restored.total_weight)
            assert uninterrupted.expected_sample_size == restored.expected_sample_size
            assert uninterrupted.time == restored.time

    def test_snapshot_is_isolated_from_the_live_sampler(self, name):
        sampler = SAMPLER_FACTORIES[name]()
        for batch in _batches(10):
            sampler.process_batch(batch)
        snapshot = sampler.state_dict()
        frozen_sample = Sampler.from_state_dict(snapshot).sample_items()
        for batch in _batches(10, start=10 * 25):
            sampler.process_batch(batch)
        # Mutating the live sampler must not have corrupted the snapshot.
        assert Sampler.from_state_dict(snapshot).sample_items() == frozen_sample

    def test_concrete_class_restore_checks_type(self, name):
        sampler = SAMPLER_FACTORIES[name]()
        sampler.process_batch(_batches(1)[0])
        state = sampler.state_dict()
        wrong = SlidingWindow if not isinstance(sampler, SlidingWindow) else BTBS
        with pytest.raises(ValueError, match="snapshot describes"):
            wrong.from_state_dict(state)


class TestRTBSSnapshotDetails:
    def test_latent_columns_round_trip(self):
        sampler = RTBS(n=10, lambda_=0.4, rng=3)
        for batch in _batches(20, size=7):
            sampler.process_batch(batch)
        restored = RTBS.from_state_dict(sampler.state_dict())
        assert np.array_equal(restored.latent.full_array, sampler.latent.full_array)
        assert np.array_equal(restored.latent.item_weights, sampler.latent.item_weights)
        assert np.array_equal(
            restored.latent.item_timestamps, sampler.latent.item_timestamps
        )
        assert restored.latent.weight == sampler.latent.weight
        assert restored.latent.partial == sampler.latent.partial
        assert np.array_equal(restored.sample_ages(), sampler.sample_ages())

    def test_rng_stream_resumes_exactly(self):
        sampler = RTBS(n=20, lambda_=0.3, rng=9)
        for batch in _batches(5, size=30):
            sampler.process_batch(batch)
        restored = RTBS.from_state_dict(sampler.state_dict())
        # The next draws of the private generators must coincide.
        assert sampler._rng.random(8).tolist() == restored._rng.random(8).tolist()

    def test_history_round_trips(self):
        sampler = RTBS(n=15, lambda_=0.2, rng=1, record_history=True)
        for batch in _batches(6, size=10):
            sampler.process_batch(batch)
        restored = RTBS.from_state_dict(sampler.state_dict())
        assert len(restored.history) == len(sampler.history)
        assert restored.history[-1] == sampler.history[-1]
        restored.process_batch(_batches(1, start=60)[0])
        assert len(restored.history) == len(sampler.history) + 1


class TestLatentSampleStateDict:
    def test_round_trip_preserves_columns_and_weight(self):
        latent = LatentSample.from_full_items([1, 2, 3], timestamp=2.0)
        latent = latent.with_appended_full([4, 5], timestamp=3.0)
        restored = LatentSample.from_state_dict(latent.state_dict())
        assert restored.weight == latent.weight
        assert restored.full == latent.full
        assert restored.item_timestamps.tolist() == latent.item_timestamps.tolist()

    def test_invalid_state_is_rejected(self):
        latent = LatentSample.from_full_items([1, 2, 3])
        state = latent.state_dict()
        state["weight"] = 7.5  # floor(7.5) != 3 full items
        with pytest.raises(ValueError):
            LatentSample.from_state_dict(state)


class TestProtocolErrors:
    def test_unknown_sampler_type_is_rejected(self):
        sampler = BTBS(lambda_=0.1, rng=0)
        state = sampler.state_dict()
        state["sampler_type"] = "NoSuchSampler"
        with pytest.raises(ValueError, match="unknown sampler type"):
            Sampler.from_state_dict(state)

    def test_unknown_format_version_is_rejected(self):
        sampler = BTBS(lambda_=0.1, rng=0)
        state = sampler.state_dict()
        state["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            Sampler.from_state_dict(state)

    def test_registry_resolves_every_factory_class(self):
        for name, factory in SAMPLER_FACTORIES.items():
            cls = type(factory())
            assert resolve_sampler_type(cls.__name__) is cls
