"""Tests for the closed-form analysis helpers (Theorem 3.1, Theorem 4.2, Remark 1)."""

from __future__ import annotations

import math

import pytest

from repro.core import analysis


class TestTTBSExpectedSize:
    def test_starts_at_initial_size(self):
        assert analysis.ttbs_expected_size(100, 0.1, 0, initial_size=7) == 7

    def test_converges_to_target(self):
        assert analysis.ttbs_expected_size(100, 0.1, 10_000, initial_size=0) == pytest.approx(100)

    def test_constant_when_started_at_target(self):
        for t in range(5):
            assert analysis.ttbs_expected_size(50, 0.3, t, initial_size=50) == pytest.approx(50)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            analysis.ttbs_expected_size(10, 0.1, -1)


class TestDeviationExponents:
    def test_nu_plus_positive_for_large_epsilon(self):
        assert analysis.nu_plus(1.0, 1.0) > 0

    def test_nu_plus_increasing_in_epsilon(self):
        values = [analysis.nu_plus(eps, 1.0) for eps in (0.5, 1.0, 2.0)]
        assert values[0] < values[1] < values[2]

    def test_nu_minus_range(self):
        # nu^- increases from r - 1 - ln r to r as epsilon goes from 0 to 1.
        r = 2.0
        low = analysis.nu_minus(1e-9, r)
        high = analysis.nu_minus(1 - 1e-9, r)
        assert low == pytest.approx(r - 1 - math.log(r), abs=1e-6)
        assert high == pytest.approx(r, abs=1e-6)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            analysis.nu_plus(0.0, 1.0)
        with pytest.raises(ValueError):
            analysis.nu_minus(1.0, 1.0)

    def test_invalid_support_ratio_rejected(self):
        with pytest.raises(ValueError):
            analysis.nu_plus(0.5, 0.5)

    def test_deviation_bounds_shrink_with_n(self):
        small = analysis.ttbs_upper_deviation_bound(100, 0.5, 1.0)
        large = analysis.ttbs_upper_deviation_bound(1000, 0.5, 1.0)
        assert large < small < 1.0
        assert analysis.ttbs_lower_deviation_bound(1000, 0.5, 1.0) < 1.0


class TestBTBSEquilibrium:
    def test_matches_formula(self):
        assert analysis.btbs_equilibrium_size(100, 0.1) == pytest.approx(
            100 / (1 - math.exp(-0.1))
        )

    def test_zero_decay_is_infinite(self):
        assert analysis.btbs_equilibrium_size(10, 0.0) == math.inf


class TestRTBSFormulas:
    def test_total_weight_geometric_sum(self):
        # Constant batches: W_t = b (p + p^2 + ... ) form, computed directly.
        sizes = [10] * 5
        lambda_ = 0.2
        p = math.exp(-lambda_)
        expected = sum(10 * p ** (5 - j) for j in range(1, 6))
        assert analysis.rtbs_total_weight(sizes, lambda_) == pytest.approx(expected)

    def test_expected_size_is_capped_at_n(self):
        assert analysis.rtbs_expected_size([1000] * 50, 0.05, 100) == 100

    def test_appearance_probability_sums_to_expected_size(self):
        sizes = [5, 10, 0, 20, 8]
        lambda_, n = 0.3, 12
        total = sum(
            sizes[batch - 1]
            * analysis.rtbs_appearance_probability(sizes, lambda_, n, batch)
            for batch in range(1, len(sizes) + 1)
        )
        assert total == pytest.approx(analysis.rtbs_expected_size(sizes, lambda_, n))

    def test_appearance_probability_ratio_matches_criterion(self):
        sizes = [10] * 6
        lambda_, n = 0.4, 3
        older = analysis.rtbs_appearance_probability(sizes, lambda_, n, 2)
        newer = analysis.rtbs_appearance_probability(sizes, lambda_, n, 5)
        assert older / newer == pytest.approx(math.exp(-lambda_ * 3))

    def test_appearance_probability_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            analysis.rtbs_appearance_probability([5, 5], 0.1, 3, 0)

    def test_relative_appearance_ratio(self):
        assert analysis.relative_appearance_ratio(0.2, 5) == pytest.approx(math.exp(-1.0))
        with pytest.raises(ValueError):
            analysis.relative_appearance_ratio(0.2, -1)

    def test_zero_weight_probability_is_zero(self):
        assert analysis.rtbs_appearance_probability([0, 0], 0.1, 5, 1) == 0.0
