"""Tests for the baseline samplers: B-TBS, B-RS, sliding windows, Unif, A-Res."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.analysis import btbs_equilibrium_size
from repro.core.ares import AResSampler
from repro.core.brs import BatchedReservoir
from repro.core.btbs import BTBS
from repro.core.sliding_window import SlidingWindow, TimeBasedSlidingWindow
from repro.core.uniform import UniformReservoir
from tests.conftest import empirical_inclusion_by_batch, make_batches


class TestBTBS:
    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            BTBS(lambda_=-1.0)

    def test_all_arriving_items_accepted(self, rng):
        sampler = BTBS(lambda_=0.5, rng=rng)
        sample = sampler.process_batch(list(range(10)))
        assert set(range(10)) <= set(sample)

    def test_appearance_probability_decays_exponentially(self):
        trials, num_batches, batch_size, lambda_ = 800, 8, 25, 0.4
        samples = []
        for trial in range(trials):
            sampler = BTBS(lambda_=lambda_, rng=trial)
            for batch in make_batches(num_batches, batch_size):
                sampler.process_batch(batch)
            samples.append(sampler.sample_items())
        empirical = empirical_inclusion_by_batch(samples, num_batches, batch_size)
        for batch_index in range(1, num_batches + 1):
            theory = math.exp(-lambda_ * (num_batches - batch_index))
            assert empirical[batch_index - 1] == pytest.approx(theory, abs=0.05)

    def test_equilibrium_size(self):
        lambda_, batch_size = 0.1, 50
        sampler = BTBS(lambda_=lambda_, rng=5)
        sizes = []
        for batch in make_batches(400, batch_size):
            sizes.append(len(sampler.process_batch(batch)))
        steady = np.mean(sizes[200:])
        assert steady == pytest.approx(btbs_equilibrium_size(batch_size, lambda_), rel=0.1)
        assert sampler.equilibrium_size(batch_size) == btbs_equilibrium_size(batch_size, lambda_)

    def test_zero_decay_equilibrium_is_infinite(self):
        assert BTBS(lambda_=0.0).equilibrium_size(10) == math.inf

    def test_negative_mean_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BTBS(lambda_=0.1).equilibrium_size(-1)


class TestBatchedReservoir:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BatchedReservoir(n=0)

    def test_rejects_oversized_initial_sample(self):
        with pytest.raises(ValueError):
            BatchedReservoir(n=1, initial_items=[1, 2])

    def test_size_is_min_of_capacity_and_items_seen(self, rng):
        sampler = BatchedReservoir(n=20, rng=rng)
        sampler.process_batch(list(range(5)))
        assert len(sampler) == 5
        sampler.process_batch(list(range(5, 50)))
        assert len(sampler) == 20
        assert sampler.items_seen == 50
        assert sampler.total_weight == 50.0

    def test_uniform_inclusion_across_batches(self):
        # With no time bias, all items seen so far are equally likely to be
        # in the sample regardless of their arrival batch.
        trials, num_batches, batch_size, n = 800, 6, 20, 30
        samples = []
        for trial in range(trials):
            sampler = BatchedReservoir(n=n, rng=trial)
            for batch in make_batches(num_batches, batch_size):
                sampler.process_batch(batch)
            samples.append(sampler.sample_items())
        empirical = empirical_inclusion_by_batch(samples, num_batches, batch_size)
        expected = n / (num_batches * batch_size)
        for value in empirical:
            assert value == pytest.approx(expected, abs=0.04)

    def test_no_duplicates(self, rng):
        sampler = BatchedReservoir(n=15, rng=rng)
        for batch in make_batches(30, 10):
            sample = sampler.process_batch(batch)
            assert len(sample) == len(set(sample))

    def test_empty_batch_is_noop(self, rng):
        sampler = BatchedReservoir(n=5, rng=rng)
        sampler.process_batch(list(range(10)))
        before = sorted(sampler.sample_items())
        sampler.process_batch([])
        assert sorted(sampler.sample_items()) == before


class TestSlidingWindow:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(n=0)

    def test_keeps_most_recent_items(self, rng):
        window = SlidingWindow(n=5, rng=rng)
        window.process_batch([1, 2, 3])
        window.process_batch([4, 5, 6, 7])
        assert window.sample_items() == [3, 4, 5, 6, 7]

    def test_never_exceeds_capacity(self, rng):
        window = SlidingWindow(n=10, rng=rng)
        for batch in make_batches(20, 7):
            assert len(window.process_batch(batch)) <= 10

    def test_old_items_completely_forgotten(self, rng):
        window = SlidingWindow(n=3, rng=rng)
        window.process_batch(["old1", "old2", "old3"])
        window.process_batch(["new1", "new2", "new3"])
        assert all(not str(item).startswith("old") for item in window.sample_items())


class TestTimeBasedSlidingWindow:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TimeBasedSlidingWindow(window=0)

    def test_expires_items_by_age(self, rng):
        window = TimeBasedSlidingWindow(window=2.0, rng=rng)
        window.process_batch(["a"], time=1.0)
        window.process_batch(["b"], time=2.0)
        window.process_batch(["c"], time=3.5)
        # Item "a" (age 2.5) is expired; "b" (age 1.5) and "c" remain.
        assert window.sample_items() == ["b", "c"]

    def test_unbounded_growth_within_window(self, rng):
        # Unlike the count-based window, memory is unbounded for fast streams.
        window = TimeBasedSlidingWindow(window=10.0, rng=rng)
        for batch in make_batches(5, 100):
            window.process_batch(batch)
        assert len(window) == 500


class TestUniformReservoir:
    def test_add_single_items(self, rng):
        reservoir = UniformReservoir(n=10, rng=rng)
        for value in range(100):
            reservoir.add(value)
        assert len(reservoir) == 10
        assert reservoir.inclusion_probability() == pytest.approx(0.1)

    def test_inclusion_probability_empty(self, rng):
        assert UniformReservoir(n=10, rng=rng).inclusion_probability() == 0.0

    def test_single_item_uniformity(self):
        counts = np.zeros(20)
        for trial in range(3000):
            reservoir = UniformReservoir(n=5, rng=trial)
            for value in range(20):
                reservoir.add(value)
            for value in reservoir.sample_items():
                counts[value] += 1
        proportions = counts / 3000
        assert np.allclose(proportions, 0.25, atol=0.05)


class TestAResSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AResSampler(n=0, lambda_=0.1)
        with pytest.raises(ValueError):
            AResSampler(n=10, lambda_=-0.1)

    def test_bounded_size(self, rng):
        sampler = AResSampler(n=12, lambda_=0.2, rng=rng)
        for batch in make_batches(50, 10):
            assert len(sampler.process_batch(batch)) <= 12

    def test_recency_bias(self):
        # With strong decay, recent batches dominate the sample.
        counts_recent, counts_old = 0, 0
        for trial in range(200):
            sampler = AResSampler(n=20, lambda_=1.0, rng=trial)
            for batch in make_batches(10, 20):
                sampler.process_batch(batch)
            for batch_index, _ in sampler.sample_items():
                if batch_index >= 9:
                    counts_recent += 1
                elif batch_index <= 2:
                    counts_old += 1
        assert counts_recent > 10 * counts_old

    def test_landmark_renormalization_keeps_running(self, rng):
        # A long stream with a large decay rate forces the forward-decay
        # landmark to shift; the sampler must keep functioning.
        sampler = AResSampler(n=5, lambda_=2.0, rng=rng)
        for batch_index in range(1, 400):
            sampler.process_batch([(batch_index, i) for i in range(3)])
        assert len(sampler) == 5
        newest = max(batch_index for batch_index, _ in sampler.sample_items())
        assert newest >= 395

    def test_empty_batches_are_noops(self, rng):
        sampler = AResSampler(n=5, lambda_=0.5, rng=rng)
        sampler.process_batch(list(range(10)))
        before = sorted(sampler.sample_items())
        sampler.process_batch([])
        assert sorted(sampler.sample_items()) == before
