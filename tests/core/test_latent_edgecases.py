"""Regression tests for edge defects surfaced by the strict-typing pass.

Each test pins one fix:

* ``downsample`` below weight 1 from an integral-weight sample must always
  promote a full item to partial — the old ``u > 0.0`` gate skipped the
  swap on the measure-zero draw ``u == 0.0`` and produced an
  invariant-violating sample (positive fractional weight, no partial item).
* ``LatentSample.split`` validates the partial destination inside the
  ``has_partial`` branch (Optional narrowing); behavior is unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latent import LatentSample, downsample


class _ForcedFirstDraw(np.random.Generator):
    """A real Generator whose first ``random()`` returns a chosen value."""

    def __init__(self, first: float, seed: int = 0) -> None:
        super().__init__(np.random.PCG64(seed))
        self._pending: float | None = first

    def random(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        if self._pending is not None and not args and not kwargs:
            value, self._pending = self._pending, None
            return value
        return super().random(*args, **kwargs)


class TestDownsampleZeroDraw:
    def test_integral_weight_below_one_swaps_even_on_zero_draw(self) -> None:
        # weight 2.0 (no partial), target 0.5: the result *must* hold exactly
        # one partial item. With u == 0.0 the old code kept the (empty)
        # partial and crashed in check_invariants.
        latent = LatentSample.from_full_items([10, 20])
        result = downsample(latent, 0.5, rng=_ForcedFirstDraw(0.0))
        assert result.weight == pytest.approx(0.5)
        assert result.has_partial
        assert result.fraction == pytest.approx(0.5)
        assert len(result.full_array) == 0
        assert result.partial[0] in (10, 20)

    def test_zero_draw_matches_nonzero_draw_distribution_support(self) -> None:
        latent = LatentSample.from_full_items([10, 20])
        forced = downsample(latent, 0.5, rng=_ForcedFirstDraw(0.0, seed=7))
        organic = downsample(latent, 0.5, rng=_ForcedFirstDraw(0.5, seed=7))
        # Same RNG consumption on both paths: the swap draw comes second.
        assert forced.partial == organic.partial

    def test_existing_partial_kept_on_zero_draw(self) -> None:
        # With a real partial present, u == 0.0 keeps it — unchanged behavior.
        base = LatentSample.from_full_items([1, 2])
        with_partial = downsample(base, 1.5, rng=_ForcedFirstDraw(0.9))
        assert with_partial.has_partial
        kept = downsample(with_partial, 0.25, rng=_ForcedFirstDraw(0.0))
        assert kept.has_partial
        assert kept.partial == with_partial.partial


class TestSplitPartialDestination:
    def test_partial_without_destination_still_raises(self) -> None:
        latent = downsample(
            LatentSample.from_full_items([1, 2, 3]),
            2.5,
            rng=np.random.default_rng(3),
        )
        assert latent.has_partial
        with pytest.raises(ValueError, match="partial item.*no destination"):
            latent.split(np.array([0, 1], dtype=np.int64), None)

    def test_no_partial_accepts_none_destination(self) -> None:
        latent = LatentSample.from_full_items([1, 2, 3])
        pieces = latent.split(np.array([0, 1, 0], dtype=np.int64), None)
        assert sorted(pieces) == [0, 1]
        assert sum(piece.weight for piece in pieces.values()) == pytest.approx(3.0)
