"""Tests for latent (fractional) samples and Algorithm 3 downsampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latent import LatentSample, downsample


class TestLatentSampleBasics:
    def test_empty(self):
        latent = LatentSample.empty()
        latent.check_invariants()
        assert latent.weight == 0.0
        assert latent.footprint == 0
        assert latent.items() == []

    def test_from_full_items(self):
        latent = LatentSample.from_full_items(["a", "b", "c"])
        latent.check_invariants()
        assert latent.weight == 3.0
        assert latent.fraction == 0.0
        assert latent.footprint == 3

    def test_fractional_footprint(self):
        latent = LatentSample(full=["a", "b", "c"], partial=["d"], weight=3.6)
        latent.check_invariants()
        assert latent.footprint == 4
        assert latent.fraction == pytest.approx(0.6)

    def test_invariant_violation_missing_partial(self):
        with pytest.raises(ValueError):
            LatentSample(full=["a"], partial=[], weight=1.5).check_invariants()

    def test_invariant_violation_wrong_full_count(self):
        with pytest.raises(ValueError):
            LatentSample(full=["a", "b"], partial=["c"], weight=1.5).check_invariants()

    def test_invariant_violation_unexpected_partial(self):
        with pytest.raises(ValueError):
            LatentSample(full=["a", "b"], partial=["c"], weight=2.0).check_invariants()

    def test_invariant_violation_two_partials(self):
        with pytest.raises(ValueError):
            LatentSample(full=[], partial=["a", "b"], weight=0.5).check_invariants()

    def test_copy_is_independent(self):
        latent = LatentSample(full=["a"], partial=["b"], weight=1.5)
        clone = latent.copy()
        clone.full.append("c")
        assert latent.full == ["a"]


class TestRealize:
    def test_realized_size_distribution_matches_weight(self, rng):
        # Equation (3): E[|S|] equals the sample weight C.
        latent = LatentSample(full=["a", "b", "c"], partial=["d"], weight=3.6)
        sizes = [len(latent.realize(rng)) for _ in range(20000)]
        assert set(sizes) == {3, 4}
        assert np.mean(sizes) == pytest.approx(3.6, abs=0.02)

    def test_integral_weight_realizes_exactly(self, rng):
        latent = LatentSample.from_full_items(list(range(5)))
        for _ in range(10):
            assert len(latent.realize(rng)) == 5

    def test_full_items_always_present(self, rng):
        latent = LatentSample(full=["a", "b"], partial=["c"], weight=2.2)
        for _ in range(50):
            realized = latent.realize(rng)
            assert "a" in realized and "b" in realized


class TestDownsampleValidation:
    def test_rejects_non_positive_target(self, rng):
        latent = LatentSample.from_full_items([1, 2, 3])
        with pytest.raises(ValueError):
            downsample(latent, 0.0, rng)

    def test_rejects_target_larger_than_current(self, rng):
        latent = LatentSample.from_full_items([1, 2, 3])
        with pytest.raises(ValueError):
            downsample(latent, 4.0, rng)

    def test_target_equal_to_current_is_a_copy(self, rng):
        latent = LatentSample.from_full_items([1, 2, 3])
        result = downsample(latent, 3.0, rng)
        assert sorted(result.full) == [1, 2, 3]

    def test_output_invariants_hold(self, rng):
        latent = LatentSample(full=list(range(7)), partial=[99], weight=7.4)
        for target in (0.3, 1.0, 2.5, 6.9, 7.2):
            result = downsample(latent, target, rng)
            result.check_invariants()
            assert result.weight == pytest.approx(target)

    def test_items_come_from_input(self, rng):
        latent = LatentSample(full=list(range(10)), partial=[42], weight=10.5)
        result = downsample(latent, 4.7, rng)
        assert set(result.items()) <= set(latent.items())


class TestDownsampleScaling:
    """Theorem 4.1: Pr[i in S'] = (C'/C) Pr[i in S] for every item."""

    @staticmethod
    def _empirical_probabilities(latent, target, trials, seed):
        rng = np.random.default_rng(seed)
        counts: dict[object, int] = {item: 0 for item in latent.items()}
        for _ in range(trials):
            realized = downsample(latent, target, rng).realize(rng)
            for item in realized:
                counts[item] += 1
        return {item: count / trials for item, count in counts.items()}

    def test_full_items_scale_from_integral_weight(self):
        # Figure 4(a): from C=3 (all full) to C'=1.5 every item should appear
        # with probability 1 * (1.5/3) = 0.5.
        latent = LatentSample.from_full_items(["a", "b", "c"])
        probabilities = self._empirical_probabilities(latent, 1.5, 20000, seed=1)
        for item in "abc":
            assert probabilities[item] == pytest.approx(0.5, abs=0.02)

    def test_partial_item_scales(self):
        # Figure 4(b): from C=3.2 to C'=1.6 the partial item d (p=0.2) should
        # appear with probability 0.1 and the full items with probability 0.5.
        latent = LatentSample(full=["a", "b", "c"], partial=["d"], weight=3.2)
        probabilities = self._empirical_probabilities(latent, 1.6, 30000, seed=2)
        assert probabilities["d"] == pytest.approx(0.1, abs=0.01)
        for item in "abc":
            assert probabilities[item] == pytest.approx(0.5, abs=0.02)

    def test_no_full_item_retained_case(self):
        # Figure 4(c): from C=2.4 to C'=0.4; every item scales by 1/6.
        latent = LatentSample(full=["a", "b"], partial=["c"], weight=2.4)
        probabilities = self._empirical_probabilities(latent, 0.4, 30000, seed=3)
        assert probabilities["a"] == pytest.approx(1.0 / 6.0, abs=0.02)
        assert probabilities["b"] == pytest.approx(1.0 / 6.0, abs=0.02)
        assert probabilities["c"] == pytest.approx(0.4 * (0.4 / 2.4), abs=0.01)

    def test_no_item_deleted_case(self):
        # Figure 4(d): from C=2.4 to C'=2.1; full items scale to 2.1/2.4 and
        # the partial item to 0.4 * (2.1/2.4) = 0.35.
        latent = LatentSample(full=["a", "b"], partial=["c"], weight=2.4)
        probabilities = self._empirical_probabilities(latent, 2.1, 30000, seed=4)
        assert probabilities["a"] == pytest.approx(2.1 / 2.4, abs=0.02)
        assert probabilities["b"] == pytest.approx(2.1 / 2.4, abs=0.02)
        assert probabilities["c"] == pytest.approx(0.35, abs=0.02)

    def test_downsample_to_integral_target(self):
        # Downsampling to an integral target drops the partial item but must
        # still scale every input item's probability by C'/C.
        latent = LatentSample(full=["a", "b", "c", "d"], partial=["e"], weight=4.5)
        probabilities = self._empirical_probabilities(latent, 2.0, 30000, seed=5)
        for item in "abcd":
            assert probabilities[item] == pytest.approx(2.0 / 4.5, abs=0.02)
        assert probabilities["e"] == pytest.approx(0.5 * (2.0 / 4.5), abs=0.02)
