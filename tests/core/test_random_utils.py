"""Unit tests for the shared random primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.random_utils import (
    binomial,
    choose_indices,
    ensure_rng,
    hypergeometric,
    multivariate_hypergeometric,
    sample_without_replacement,
    spawn_rngs,
    stochastic_round,
)


class TestEnsureRng:
    def test_accepts_seed(self):
        generator = ensure_rng(7)
        assert isinstance(generator, np.random.Generator)

    def test_passes_through_generator(self, rng):
        assert ensure_rng(rng) is rng

    def test_accepts_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(3).random() == ensure_rng(3).random()


class TestSpawnRngs:
    def test_count(self, rng):
        children = spawn_rngs(rng, 5)
        assert len(children) == 5

    def test_children_are_independent_objects(self, rng):
        children = spawn_rngs(rng, 3)
        values = {child.random() for child in children}
        assert len(values) == 3

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            spawn_rngs(rng, -1)

    def test_zero_count(self, rng):
        assert spawn_rngs(rng, 0) == []


class TestBinomial:
    def test_zero_trials(self, rng):
        assert binomial(rng, 0, 0.5) == 0

    def test_probability_one(self, rng):
        assert binomial(rng, 10, 1.0) == 10

    def test_probability_zero(self, rng):
        assert binomial(rng, 10, 0.0) == 0

    def test_clamps_probability_above_one(self, rng):
        assert binomial(rng, 10, 1.2) == 10

    def test_negative_trials_rejected(self, rng):
        with pytest.raises(ValueError):
            binomial(rng, -1, 0.5)

    def test_mean_is_approximately_np(self, rng):
        draws = [binomial(rng, 100, 0.3) for _ in range(2000)]
        assert abs(np.mean(draws) - 30.0) < 1.0


class TestHypergeometric:
    def test_zero_draws(self, rng):
        assert hypergeometric(rng, 0, 5, 5) == 0

    def test_no_good_items(self, rng):
        assert hypergeometric(rng, 5, 0, 10) == 0

    def test_all_good_items(self, rng):
        assert hypergeometric(rng, 5, 10, 0) == 5

    def test_draws_capped_at_population(self, rng):
        value = hypergeometric(rng, 100, 3, 4)
        assert value <= 3

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            hypergeometric(rng, -1, 5, 5)

    def test_mean(self, rng):
        draws = [hypergeometric(rng, 10, 50, 50) for _ in range(2000)]
        assert abs(np.mean(draws) - 5.0) < 0.2


class TestStochasticRound:
    def test_integer_passthrough(self, rng):
        assert stochastic_round(rng, 4.0) == 4

    def test_zero(self, rng):
        assert stochastic_round(rng, 0.0) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            stochastic_round(rng, -0.1)

    def test_adjacent_integers_only(self, rng):
        values = {stochastic_round(rng, 2.3) for _ in range(200)}
        assert values <= {2, 3}

    def test_mean_preserving(self, rng):
        draws = [stochastic_round(rng, 2.3) for _ in range(20000)]
        assert abs(np.mean(draws) - 2.3) < 0.02


class TestSampleWithoutReplacement:
    def test_empty_request(self, rng):
        assert sample_without_replacement(rng, [1, 2, 3], 0) == []

    def test_whole_population(self, rng):
        assert sorted(sample_without_replacement(rng, [1, 2, 3], 3)) == [1, 2, 3]

    def test_oversized_request_capped(self, rng):
        assert len(sample_without_replacement(rng, [1, 2], 10)) == 2

    def test_no_duplicates(self, rng):
        sample = sample_without_replacement(rng, list(range(100)), 50)
        assert len(sample) == len(set(sample)) == 50

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1], -1)

    def test_uniformity(self, rng):
        counts = np.zeros(5)
        for _ in range(5000):
            for value in sample_without_replacement(rng, list(range(5)), 2):
                counts[value] += 1
        proportions = counts / 5000
        assert np.allclose(proportions, 0.4, atol=0.03)


class TestChooseIndices:
    def test_range_and_uniqueness(self, rng):
        indices = choose_indices(rng, 20, 10)
        assert len(set(indices.tolist())) == 10
        assert indices.min() >= 0 and indices.max() < 20

    def test_empty(self, rng):
        assert choose_indices(rng, 10, 0).size == 0

    def test_capped(self, rng):
        assert choose_indices(rng, 3, 10).size == 3


class TestMultivariateHypergeometric:
    def test_totals(self, rng):
        counts = multivariate_hypergeometric(rng, [10, 20, 30], 15)
        assert sum(counts) == 15
        assert all(c <= s for c, s in zip(counts, [10, 20, 30]))

    def test_zero_draws(self, rng):
        assert multivariate_hypergeometric(rng, [5, 5], 0) == [0, 0]

    def test_draw_everything(self, rng):
        assert multivariate_hypergeometric(rng, [3, 4], 7) == [3, 4]

    def test_too_many_draws_rejected(self, rng):
        with pytest.raises(ValueError):
            multivariate_hypergeometric(rng, [2, 2], 5)

    def test_negative_group_rejected(self, rng):
        with pytest.raises(ValueError):
            multivariate_hypergeometric(rng, [-1, 5], 2)

    def test_empty_groups(self, rng):
        assert multivariate_hypergeometric(rng, [], 0) == []

    def test_proportional_allocation(self, rng):
        totals = np.zeros(2)
        for _ in range(2000):
            totals += multivariate_hypergeometric(rng, [100, 300], 40)
        proportions = totals / (2000 * 40)
        assert np.allclose(proportions, [0.25, 0.75], atol=0.02)
