"""Test package."""
