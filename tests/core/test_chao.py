"""Tests for B-Chao (Appendix D) including its documented criterion-(1) violations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.chao import BatchedChao
from repro.core.rtbs import RTBS
from tests.conftest import empirical_inclusion_by_batch, make_batches


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BatchedChao(n=0, lambda_=0.1)

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            BatchedChao(n=5, lambda_=-0.1)

    def test_rejects_oversized_initial_sample(self):
        with pytest.raises(ValueError):
            BatchedChao(n=1, lambda_=0.1, initial_items=[1, 2])


class TestSizeBehaviour:
    def test_sample_never_exceeds_capacity(self, rng):
        sampler = BatchedChao(n=25, lambda_=0.2, rng=rng)
        for batch in make_batches(80, 9):
            assert len(sampler.process_batch(batch)) <= 25

    def test_sample_size_never_shrinks_once_full(self, rng):
        # Unlike R-TBS, B-Chao keeps the sample at exactly n even when the
        # stream dries up — the root cause of its overweight-item bias.
        sampler = BatchedChao(n=20, lambda_=0.5, rng=rng)
        for batch in make_batches(10, 10):
            sampler.process_batch(batch)
        assert len(sampler) == 20
        for _ in range(20):
            sampler.process_batch([])
            assert len(sampler) == 20

    def test_fill_up_accepts_everything(self, rng):
        sampler = BatchedChao(n=100, lambda_=0.5, rng=rng)
        sampler.process_batch(list(range(30)))
        assert len(sampler) == 30
        sampler.process_batch(list(range(30, 60)))
        assert len(sampler) == 60

    def test_no_duplicates(self, rng):
        sampler = BatchedChao(n=15, lambda_=0.3, rng=rng)
        for batch in make_batches(60, 6):
            sample = sampler.process_batch(batch)
            assert len(sample) == len(set(sample))


class TestOverweightItems:
    def test_slow_arrivals_create_overweight_items(self, rng):
        # High decay rate + tiny batches relative to n: new arrivals are
        # overweight (target inclusion probability n w / W > 1).
        sampler = BatchedChao(n=50, lambda_=1.0, rng=rng)
        sampler.process_batch(list(range(50)))  # fill up
        for batch_index in range(1, 30):
            sampler.process_batch([(batch_index, 0)])
        assert len(sampler.overweight_items) > 0

    def test_fast_arrivals_have_no_overweight_items(self, rng):
        sampler = BatchedChao(n=20, lambda_=0.05, rng=rng)
        for batch in make_batches(30, 100):
            sampler.process_batch(batch)
        assert sampler.overweight_items == []

    def test_total_weight_positive(self, rng):
        sampler = BatchedChao(n=10, lambda_=0.2, rng=rng)
        for batch in make_batches(20, 5):
            sampler.process_batch(batch)
        assert sampler.total_weight > 0


class TestBiasComparedToRTBS:
    def test_chao_overrepresents_old_items_during_fill_up(self):
        """Appendix D: during fill-up B-Chao violates criterion (1), R-TBS does not.

        Stream: 10 batches of 5 items with n=40 and a strong decay rate, so the
        reservoir is still filling. Under criterion (1) the oldest batch should
        appear far less often than the newest; B-Chao instead keeps everything.
        """
        trials, num_batches, batch_size, n, lambda_ = 300, 8, 5, 40, 0.5
        chao_samples, rtbs_samples = [], []
        for trial in range(trials):
            chao = BatchedChao(n=n, lambda_=lambda_, rng=trial)
            rtbs = RTBS(n=n, lambda_=lambda_, rng=trial + 10_000)
            for batch in make_batches(num_batches, batch_size):
                chao.process_batch(batch)
                rtbs.process_batch(batch)
            chao_samples.append(chao.sample_items())
            rtbs_samples.append(rtbs.sample_items())
        chao_incl = empirical_inclusion_by_batch(chao_samples, num_batches, batch_size)
        rtbs_incl = empirical_inclusion_by_batch(rtbs_samples, num_batches, batch_size)
        target_ratio = math.exp(-lambda_ * (num_batches - 1))
        chao_ratio = chao_incl[0] / chao_incl[-1]
        rtbs_ratio = rtbs_incl[0] / rtbs_incl[-1]
        # R-TBS respects the exponential ratio; B-Chao keeps old items with
        # probability ~1 during fill-up, so its ratio is far too large.
        assert rtbs_ratio == pytest.approx(target_ratio, abs=0.1)
        assert chao_ratio > 5 * target_ratio
