"""Tests for the R-TBS algorithm (Algorithm 2, Theorems 4.2-4.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.analysis import rtbs_appearance_probability, rtbs_expected_size
from repro.core.rtbs import RTBS
from tests.conftest import empirical_inclusion_by_batch, make_batches


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RTBS(n=0, lambda_=0.1)

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            RTBS(n=10, lambda_=-0.1)

    def test_rejects_oversized_initial_sample(self):
        with pytest.raises(ValueError):
            RTBS(n=2, lambda_=0.1, initial_items=[1, 2, 3])

    def test_initial_sample_is_reported(self):
        sampler = RTBS(n=5, lambda_=0.1, initial_items=["a", "b"], rng=0)
        assert sorted(sampler.sample_items()) == ["a", "b"]
        assert sampler.total_weight == 2.0


class TestSizeBound:
    def test_never_exceeds_capacity(self, rng):
        sampler = RTBS(n=25, lambda_=0.2, rng=rng)
        for batch in make_batches(100, 40):
            sample = sampler.process_batch(batch)
            assert len(sample) <= 25

    def test_bound_holds_under_bursty_batches(self, rng):
        sampler = RTBS(n=50, lambda_=0.05, rng=rng)
        for batch_index in range(1, 80):
            size = 500 if batch_index % 10 == 0 else 3
            sampler.process_batch([(batch_index, i) for i in range(size)])
            assert len(sampler) <= 50

    def test_empty_batches_shrink_the_sample(self, rng):
        sampler = RTBS(n=100, lambda_=0.5, rng=rng)
        sampler.process_batch([("x", i) for i in range(100)])
        initial = len(sampler)
        for _ in range(10):
            sampler.process_batch([])
        assert len(sampler) < initial

    def test_sample_items_are_stream_items_without_duplicates(self, rng):
        sampler = RTBS(n=30, lambda_=0.1, rng=rng)
        seen: set = set()
        for batch in make_batches(50, 20):
            seen.update(batch)
            sample = sampler.process_batch(batch)
            assert len(sample) == len(set(sample))
            assert set(sample) <= seen


class TestWeights:
    def test_total_weight_recursion(self, rng):
        lambda_ = 0.13
        sampler = RTBS(n=10, lambda_=lambda_, rng=rng)
        sizes = [7, 0, 12, 5, 30, 1]
        expected = 0.0
        for batch_index, size in enumerate(sizes, start=1):
            sampler.process_batch([(batch_index, i) for i in range(size)])
            expected = expected * math.exp(-lambda_) + size
            assert sampler.total_weight == pytest.approx(expected)

    def test_sample_weight_is_min_of_capacity_and_total(self, rng):
        sampler = RTBS(n=40, lambda_=0.1, rng=rng)
        for batch in make_batches(60, 10):
            sampler.process_batch(batch)
            assert sampler.sample_weight == pytest.approx(
                min(40.0, sampler.total_weight), abs=1e-9
            )

    def test_unsaturated_expected_size_matches_theory(self, rng):
        lambda_, batches, size = 0.1, 50, 30
        sampler = RTBS(n=10_000, lambda_=lambda_, rng=rng)
        for batch in make_batches(batches, size):
            sampler.process_batch(batch)
        assert sampler.sample_weight == pytest.approx(
            rtbs_expected_size([size] * batches, lambda_, 10_000)
        )

    def test_saturation_flag(self, rng):
        sampler = RTBS(n=10, lambda_=0.1, rng=rng)
        sampler.process_batch(list(range(5)))
        assert not sampler.is_saturated
        sampler.process_batch(list(range(100, 130)))
        assert sampler.is_saturated


class TestRealizedSampleSize:
    def test_realized_size_is_floor_or_ceil_of_weight(self, rng):
        sampler = RTBS(n=1000, lambda_=0.3, rng=rng)
        for batch in make_batches(40, 17):
            sample = sampler.process_batch(batch)
            weight = sampler.sample_weight
            assert len(sample) in {math.floor(weight), math.ceil(weight)}

    def test_expected_sample_size_property(self, rng):
        sampler = RTBS(n=100, lambda_=0.2, rng=rng)
        sampler.process_batch(list(range(30)))
        assert sampler.expected_sample_size == pytest.approx(sampler.sample_weight)


class TestAppearanceProbabilities:
    """Empirical check of invariant (4) / criterion (1)."""

    @staticmethod
    def _final_samples(trials, num_batches, batch_size, n, lambda_, seed=0):
        samples = []
        for trial in range(trials):
            sampler = RTBS(n=n, lambda_=lambda_, rng=seed + trial)
            for batch in make_batches(num_batches, batch_size):
                sampler.process_batch(batch)
            samples.append(sampler.sample_items())
        return samples

    def test_saturated_inclusion_probabilities(self):
        trials, num_batches, batch_size, n, lambda_ = 600, 12, 40, 60, 0.3
        samples = self._final_samples(trials, num_batches, batch_size, n, lambda_)
        empirical = empirical_inclusion_by_batch(samples, num_batches, batch_size)
        sizes = [batch_size] * num_batches
        for batch_index in range(1, num_batches + 1):
            theory = rtbs_appearance_probability(sizes, lambda_, n, batch_index)
            assert empirical[batch_index - 1] == pytest.approx(theory, abs=0.05)

    def test_relative_appearance_ratio(self):
        # Criterion (1): the ratio between consecutive batches' appearance
        # probabilities equals e^{-lambda} wherever probabilities are < 1.
        trials, num_batches, batch_size, n, lambda_ = 800, 10, 30, 50, 0.25
        samples = self._final_samples(trials, num_batches, batch_size, n, lambda_, seed=100)
        empirical = empirical_inclusion_by_batch(samples, num_batches, batch_size)
        ratio = math.exp(-lambda_)
        for older in range(3, num_batches - 1):
            observed = empirical[older - 1] / empirical[older]
            assert observed == pytest.approx(ratio, rel=0.2)

    def test_unsaturated_newest_items_always_included(self, rng):
        sampler = RTBS(n=1000, lambda_=0.1, rng=rng)
        for batch in make_batches(20, 10):
            sample = sampler.process_batch(batch)
        assert all(item in sample for item in batch)

    def test_theoretical_inclusion_probability_helper(self, rng):
        sampler = RTBS(n=10, lambda_=0.5, rng=rng)
        for batch in make_batches(10, 10):
            sampler.process_batch(batch)
        assert sampler.theoretical_inclusion_probability(0.0) == pytest.approx(
            sampler.sample_weight / sampler.total_weight
        )
        with pytest.raises(ValueError):
            sampler.theoretical_inclusion_probability(-1.0)


class TestTimeHandling:
    def test_arbitrary_real_valued_times(self, rng):
        sampler = RTBS(n=100, lambda_=0.2, rng=rng)
        sampler.process_batch(list(range(10)), time=1.0)
        weight_before = sampler.total_weight
        sampler.process_batch([], time=3.5)
        assert sampler.total_weight == pytest.approx(weight_before * math.exp(-0.2 * 2.5))

    def test_non_increasing_times_rejected(self, rng):
        sampler = RTBS(n=10, lambda_=0.1, rng=rng)
        sampler.process_batch([1], time=2.0)
        with pytest.raises(ValueError):
            sampler.process_batch([2], time=2.0)

    def test_history_recording(self, rng):
        sampler = RTBS(n=10, lambda_=0.1, rng=rng, record_history=True)
        for batch in make_batches(5, 3):
            sampler.process_batch(batch)
        assert len(sampler.history) == 5
        assert sampler.history[-1].time == 5.0
        assert sampler.history[-1].sample_size <= 10


class TestZeroDecay:
    def test_lambda_zero_keeps_all_items_until_saturation(self, rng):
        sampler = RTBS(n=1000, lambda_=0.0, rng=rng)
        for batch in make_batches(10, 50):
            sampler.process_batch(batch)
        # Without decay and below capacity, nothing is ever dropped.
        assert len(sampler) == 500
        assert sampler.total_weight == pytest.approx(500.0)
