"""Tests for the shared Sampler base-class behaviour (time bookkeeping, history)."""

from __future__ import annotations

from typing import Any

import pytest

from repro.core.base import Sampler, SamplerState


class _KeepEverything(Sampler):
    """Minimal sampler used to exercise the base-class machinery."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._items: list[Any] = []
        self.elapsed_values: list[float] = []

    def sample_items(self) -> list[Any]:
        return list(self._items)

    def _process_batch(self, items: list[Any], elapsed: float) -> None:
        self.elapsed_values.append(elapsed)
        self._items.extend(items)


class TestTimeBookkeeping:
    def test_default_times_are_integers(self):
        sampler = _KeepEverything()
        sampler.process_batch([1])
        sampler.process_batch([2])
        assert sampler.time == 2.0
        assert sampler.batches_seen == 2

    def test_first_batch_elapsed_without_explicit_time_is_one(self):
        sampler = _KeepEverything()
        sampler.process_batch([1])
        assert sampler.elapsed_values == [1.0]

    def test_first_batch_explicit_time_gives_full_elapsed(self):
        # Regression: the clock starts at 0, so a first batch at time 10
        # is 10 units after any initial state — not one unit.
        sampler = _KeepEverything()
        sampler.process_batch([1], time=10.0)
        assert sampler.elapsed_values == [10.0]

    def test_first_batch_time_must_be_positive(self):
        sampler = _KeepEverything()
        with pytest.raises(ValueError):
            sampler.process_batch([1], time=0.0)
        with pytest.raises(ValueError):
            sampler.process_batch([1], time=-2.0)

    def test_elapsed_reflects_gaps(self):
        sampler = _KeepEverything()
        sampler.process_batch([1], time=1.0)
        sampler.process_batch([2], time=4.5)
        assert sampler.elapsed_values[-1] == pytest.approx(3.5)

    def test_non_increasing_time_rejected(self):
        sampler = _KeepEverything()
        sampler.process_batch([1], time=5.0)
        with pytest.raises(ValueError):
            sampler.process_batch([2], time=4.0)

    def test_len_matches_sample(self):
        sampler = _KeepEverything()
        sampler.process_batch([1, 2, 3])
        assert len(sampler) == 3


class TestHistory:
    def test_history_disabled_by_default(self):
        sampler = _KeepEverything()
        sampler.process_batch([1])
        assert sampler.history == []

    def test_history_records_states(self):
        sampler = _KeepEverything(record_history=True)
        sampler.process_batch([1, 2])
        sampler.process_batch([3])
        assert len(sampler.history) == 2
        state = sampler.history[-1]
        assert isinstance(state, SamplerState)
        assert state.sample_size == 3
        assert state.time == 2.0

    def test_expected_size_defaults_to_realized_size(self):
        sampler = _KeepEverything()
        sampler.process_batch([1, 2, 3, 4])
        assert sampler.expected_sample_size == 4.0

    def test_total_weight_defaults_to_nan(self):
        sampler = _KeepEverything()
        sampler.process_batch([1])
        assert sampler.total_weight != sampler.total_weight  # NaN

    def test_abstract_methods_raise(self):
        base = Sampler()
        with pytest.raises(NotImplementedError):
            base.sample_items()
        with pytest.raises(NotImplementedError):
            base.process_batch([1])


class TestProcessStream:
    def test_stream_equals_sequential_batches(self):
        batches = [[1, 2], [3], [], [4, 5, 6]]
        sequential = _KeepEverything()
        for batch in batches:
            sequential.process_batch(batch)
        streamed = _KeepEverything()
        final = streamed.process_stream(batches)
        assert final == sequential.sample_items()
        assert streamed.time == sequential.time
        assert streamed.batches_seen == sequential.batches_seen
        assert streamed.elapsed_values == sequential.elapsed_values

    def test_stream_with_explicit_times(self):
        sampler = _KeepEverything()
        sampler.process_stream([[1], [2], [3]], times=[0.5, 2.0, 2.25])
        assert sampler.time == 2.25
        assert sampler.elapsed_values == pytest.approx([0.5, 1.5, 0.25])

    def test_stream_rejects_non_increasing_times(self):
        sampler = _KeepEverything()
        with pytest.raises(ValueError):
            sampler.process_stream([[1], [2]], times=[3.0, 3.0])

    def test_stream_records_history_per_batch(self):
        sampler = _KeepEverything(record_history=True)
        sampler.process_stream([[1, 2], [3], [4]])
        assert [state.sample_size for state in sampler.history] == [2, 3, 4]
        assert [state.time for state in sampler.history] == [1.0, 2.0, 3.0]

    def test_stream_accepts_generators_of_iterables(self):
        sampler = _KeepEverything()
        sampler.process_stream(iter([range(3), range(3, 5)]))
        assert sampler.sample_items() == [0, 1, 2, 3, 4]

    def test_expected_sample_size_is_len_by_default(self):
        # Contract: the base property answers via _sample_size without
        # randomness; for this list-backed sampler that is the realized size.
        sampler = _KeepEverything()
        sampler.process_stream([[1, 2], [3]])
        assert sampler.expected_sample_size == 3.0
        assert len(sampler) == 3
