"""Scalar-vs-vectorized equivalence: the array-backed engines must reproduce
the seed implementations.

The vectorized samplers (:mod:`repro.core.rtbs`, :mod:`repro.core.ttbs`,
:mod:`repro.core.latent`, :mod:`repro.core.chao`, :mod:`repro.core.ares`)
replace per-item Python loops with whole-array NumPy operations. These tests
pin the refactor to the original semantics along three axes:

* **bookkeeping** — the ``W_t``/``C_t`` trajectories are deterministic
  functions of the batch sizes and must match the scalar reference
  (:mod:`repro.core.reference`) batch for batch, to floating-point accuracy;
* **distribution** — realized sample sizes and per-batch inclusion
  probabilities must be statistically indistinguishable from the scalar
  implementations under matched workloads;
* **identity** — where the vectorized form consumes the identical random
  stream (A-Res batch key draws), the final sample must match item for item.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest

from repro.core.ares import AResSampler
from repro.core.chao import BatchedChao
from repro.core.latent import LatentSample, downsample
from repro.core.reference import (
    ScalarLatentSample,
    ScalarRTBS,
    ScalarTTBS,
    scalar_downsample,
)
from repro.core.rtbs import RTBS
from repro.core.ttbs import TTBS
from tests.conftest import empirical_inclusion_by_batch, make_batches


# ----------------------------------------------------------------------
# workloads exercising every Algorithm 2 branch
# ----------------------------------------------------------------------
def _workloads() -> dict[str, tuple[int, float, list[int]]]:
    """(capacity, lambda, batch sizes) per named regime."""
    rng = np.random.default_rng(7)
    return {
        "unsaturated_growth": (10_000, 0.1, [30] * 40),
        "saturated_steady": (50, 0.25, [40] * 30),
        "bursty": (60, 0.1, [500 if t % 10 == 0 else 3 for t in range(1, 60)]),
        "undershoot_with_gaps": (80, 0.4, [100, 0, 0, 5, 0, 120, 0, 0, 0, 2] * 4),
        "random_sizes": (70, 0.2, [int(s) for s in rng.integers(0, 150, size=50)]),
    }


class TestBookkeepingTrajectories:
    """``W_t`` and ``C_t`` depend only on batch sizes — they must match exactly."""

    @pytest.mark.parametrize("regime", list(_workloads().keys()))
    def test_rtbs_weight_trajectories_match_scalar(self, regime):
        n, lambda_, sizes = _workloads()[regime]
        fast = RTBS(n=n, lambda_=lambda_, rng=0)
        slow = ScalarRTBS(n=n, lambda_=lambda_, rng=1)
        counter = 0
        for size in sizes:
            batch = [(counter + i) for i in range(size)]
            counter += size
            fast.process_batch(batch)
            slow.process_batch(batch)
            assert fast.total_weight == pytest.approx(slow.total_weight, rel=1e-12, abs=1e-12)
            assert fast.sample_weight == pytest.approx(slow.sample_weight, rel=1e-12, abs=1e-12)
            assert fast.expected_sample_size == pytest.approx(
                slow.expected_sample_size, rel=1e-12, abs=1e-12
            )
            assert fast.is_saturated == slow.is_saturated

    def test_rtbs_real_valued_times_match_scalar(self):
        fast = RTBS(n=40, lambda_=0.3, rng=0)
        slow = ScalarRTBS(n=40, lambda_=0.3, rng=1)
        times = [0.5, 1.0, 3.25, 3.5, 7.0, 11.125]
        for index, time in enumerate(times):
            batch = list(range(index * 20, index * 20 + 15))
            fast.process_batch(batch, time=time)
            slow.process_batch(batch, time=time)
            assert fast.total_weight == pytest.approx(slow.total_weight, rel=1e-12)
            assert fast.sample_weight == pytest.approx(slow.sample_weight, rel=1e-12)


class TestRTBSSampleDistributions:
    def test_realized_size_is_floor_or_ceil_of_shared_weight(self):
        n, lambda_, sizes = _workloads()["random_sizes"]
        fast = RTBS(n=n, lambda_=lambda_, rng=3)
        counter = 0
        for size in sizes:
            sample = fast.process_batch(list(range(counter, counter + size)))
            counter += size
            weight = fast.sample_weight
            assert len(sample) in {math.floor(weight), math.ceil(weight)}

    def test_mean_sample_size_matches_scalar(self):
        # E[|S_t|] = C_t for both; compare the empirical means over trials.
        trials, num_batches, batch_size, n, lambda_ = 300, 15, 30, 60, 0.3
        fast_sizes, slow_sizes = [], []
        for trial in range(trials):
            fast = RTBS(n=n, lambda_=lambda_, rng=trial)
            slow = ScalarRTBS(n=n, lambda_=lambda_, rng=trial + 50_000)
            for batch in make_batches(num_batches, batch_size):
                fast.process_batch(batch)
                slow.process_batch(batch)
            fast_sizes.append(len(fast.sample_items()))
            slow_sizes.append(len(slow.sample_items()))
        assert np.mean(fast_sizes) == pytest.approx(np.mean(slow_sizes), abs=0.5)

    def test_inclusion_probabilities_match_scalar(self):
        trials, num_batches, batch_size, n, lambda_ = 500, 12, 40, 60, 0.3
        fast_samples, slow_samples = [], []
        for trial in range(trials):
            fast = RTBS(n=n, lambda_=lambda_, rng=trial)
            slow = ScalarRTBS(n=n, lambda_=lambda_, rng=trial + 100_000)
            for batch in make_batches(num_batches, batch_size):
                fast.process_batch(batch)
                slow.process_batch(batch)
            fast_samples.append(fast.sample_items())
            slow_samples.append(slow.sample_items())
        fast_incl = empirical_inclusion_by_batch(fast_samples, num_batches, batch_size)
        slow_incl = empirical_inclusion_by_batch(slow_samples, num_batches, batch_size)
        np.testing.assert_allclose(fast_incl, slow_incl, atol=0.06)


class TestDownsampleEquivalence:
    """Vectorized Algorithm 3 scales inclusion probabilities exactly like the scalar form."""

    @pytest.mark.parametrize("weight,target", [(3.0, 1.5), (3.2, 1.6), (2.4, 0.4), (2.4, 2.1), (7.4, 4.5)])
    def test_item_probabilities_match(self, weight, target):
        trials = 20_000
        full_count = math.floor(weight) if weight - math.floor(weight) > 1e-9 else int(weight)
        full = [f"f{i}" for i in range(full_count)]
        partial = ["p"] if weight - math.floor(weight) > 1e-9 else []
        fast_rng = np.random.default_rng(11)
        slow_rng = np.random.default_rng(12)
        fast_counts = {item: 0 for item in full + partial}
        slow_counts = {item: 0 for item in full + partial}
        fast_latent = LatentSample(full=full, partial=partial, weight=weight)
        slow_latent = ScalarLatentSample(full=full, partial=partial, weight=weight)
        for _ in range(trials):
            for item in downsample(fast_latent, target, fast_rng).realize(fast_rng):
                fast_counts[item] += 1
            for item in scalar_downsample(slow_latent, target, slow_rng).realize(slow_rng):
                slow_counts[item] += 1
        for item in fast_counts:
            assert fast_counts[item] / trials == pytest.approx(
                slow_counts[item] / trials, abs=0.02
            )

    def test_metadata_columns_travel_with_payloads(self):
        # Per-item timestamps must stay aligned with payloads through
        # arbitrary downsampling: item k carries timestamp float(k).
        rng = np.random.default_rng(5)
        latent = LatentSample(
            full=list(range(20)),
            partial=[99],
            weight=20.5,
            full_timestamps=np.arange(20, dtype=float),
            partial_timestamps=[99.0],
        )
        for target in (14.3, 9.0, 4.5, 0.7):
            latent = downsample(latent, target, rng)
            latent.check_invariants()
            for payload, timestamp in zip(latent.full_array, latent.item_timestamps):
                assert float(payload) == timestamp


class TestTTBSEquivalence:
    def test_size_trajectory_statistics_match_scalar(self):
        # Bernoulli-mask thinning is distributionally identical to
        # Binomial + uniform subsampling; compare the steady-state
        # mean and spread of the sample-size trajectories.
        trials, num_batches, batch_size, n, lambda_ = 120, 60, 50, 100, 0.2
        fast_final, slow_final = [], []
        for trial in range(trials):
            fast = TTBS(n=n, lambda_=lambda_, mean_batch_size=batch_size, rng=trial)
            slow = ScalarTTBS(n=n, lambda_=lambda_, mean_batch_size=batch_size, rng=trial + 7_000)
            for batch in make_batches(num_batches, batch_size):
                fast.process_batch(batch)
                slow.process_batch(batch)
            fast_final.append(len(fast))
            slow_final.append(len(slow.sample_items()))
        assert np.mean(fast_final) == pytest.approx(np.mean(slow_final), rel=0.08)
        assert np.std(fast_final) == pytest.approx(np.std(slow_final), rel=0.5)

    def test_inclusion_probabilities_match_scalar(self):
        trials, num_batches, batch_size, n, lambda_ = 400, 10, 50, 100, 0.3
        fast_samples, slow_samples = [], []
        for trial in range(trials):
            fast = TTBS(n=n, lambda_=lambda_, mean_batch_size=batch_size, rng=trial)
            slow = ScalarTTBS(
                n=n, lambda_=lambda_, mean_batch_size=batch_size, rng=trial + 9_000
            )
            for batch in make_batches(num_batches, batch_size):
                fast.process_batch(batch)
                slow.process_batch(batch)
            fast_samples.append(fast.sample_items())
            slow_samples.append(slow.sample_items())
        fast_incl = empirical_inclusion_by_batch(fast_samples, num_batches, batch_size)
        slow_incl = empirical_inclusion_by_batch(slow_samples, num_batches, batch_size)
        np.testing.assert_allclose(fast_incl, slow_incl, atol=0.06)


class TestAResIdentity:
    def test_argpartition_reservoir_matches_heap_item_for_item(self):
        """The batch form consumes the same uniform draws as the per-item heap,
        so the final reservoir contents must be identical, not just equidistributed."""
        n, lambda_, num_batches, batch_size = 25, 0.15, 40, 30
        seed = 1234
        fast = AResSampler(n=n, lambda_=lambda_, rng=seed)

        # Inline per-item heap reference (the seed implementation).
        rng = np.random.default_rng(seed)
        heap: list[tuple[float, int, object]] = []
        landmark = 0.0
        counter = 0
        time = 0.0
        for batch in make_batches(num_batches, batch_size):
            time += 1.0
            fast.process_batch(batch)
            exponent = lambda_ * (time - landmark)
            weight = math.exp(exponent)
            for item in batch:
                u = rng.random()
                key = math.log(max(u, 1e-300)) / weight
                entry = (key, counter, item)
                counter += 1
                if len(heap) < n:
                    heapq.heappush(heap, entry)
                elif key > heap[0][0]:
                    heapq.heapreplace(heap, entry)
        assert set(fast.sample_items()) == {item for _, _, item in heap}


class _ScalarPathChao(BatchedChao):
    """B-Chao with the vectorized fast path disabled (forces the per-item loop)."""

    def _bulk_insert(self, batch: np.ndarray) -> None:
        for item in batch:
            self._insert_into_full_reservoir(item)


class TestChaoEquivalence:
    def test_bulk_path_matches_per_item_path(self):
        trials, num_batches, batch_size, n, lambda_ = 300, 10, 40, 30, 0.1
        fast_samples, slow_samples = [], []
        for trial in range(trials):
            fast = BatchedChao(n=n, lambda_=lambda_, rng=trial)
            slow = _ScalarPathChao(n=n, lambda_=lambda_, rng=trial + 4_000)
            for batch in make_batches(num_batches, batch_size):
                fast.process_batch(batch)
                slow.process_batch(batch)
            assert len(fast) == n
            assert len(slow) == n
            fast_samples.append(fast.sample_items())
            slow_samples.append(slow.sample_items())
        fast_incl = empirical_inclusion_by_batch(fast_samples, num_batches, batch_size)
        slow_incl = empirical_inclusion_by_batch(slow_samples, num_batches, batch_size)
        np.testing.assert_allclose(fast_incl, slow_incl, atol=0.06)


class TestProcessStreamEquivalence:
    """The bulk API must be behaviourally identical to batch-at-a-time ingestion."""

    def test_rtbs_stream_matches_sequential_batches(self):
        n, lambda_, sizes = _workloads()["random_sizes"]
        batches = []
        counter = 0
        for size in sizes:
            batches.append(list(range(counter, counter + size)))
            counter += size
        sequential = RTBS(n=n, lambda_=lambda_, rng=42)
        for batch in batches:
            sequential.process_batch(batch)
        streamed = RTBS(n=n, lambda_=lambda_, rng=42)
        final = streamed.process_stream(batches)
        assert final == sequential.sample_items()
        assert streamed.total_weight == sequential.total_weight
        assert streamed.sample_weight == sequential.sample_weight
        assert streamed.time == sequential.time

    def test_ttbs_stream_matches_sequential_batches(self):
        batches = make_batches(30, 25)
        sequential = TTBS(n=80, lambda_=0.2, mean_batch_size=25, rng=9)
        for batch in batches:
            sequential.process_batch(batch)
        streamed = TTBS(n=80, lambda_=0.2, mean_batch_size=25, rng=9)
        final = streamed.process_stream(batches)
        assert final == sequential.sample_items()

    def test_stream_accepts_numpy_array_batches(self):
        arrays = [np.arange(offset, offset + 50) for offset in range(0, 1000, 50)]
        sampler = RTBS(n=40, lambda_=0.1, rng=0)
        sample = sampler.process_stream(arrays)
        assert 0 < len(sample) <= 40
        assert all(0 <= int(item) < 1000 for item in sample)


class TestCallerBufferSafety:
    """Samplers must never alias a caller-owned batch buffer (they may reuse it)."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: RTBS(n=100, lambda_=0.1, rng=0),
            lambda: TTBS(n=100, lambda_=0.1, mean_batch_size=20, rng=0),
            lambda: AResSampler(n=100, lambda_=0.1, rng=0),
        ],
        ids=["rtbs", "ttbs", "ares"],
    )
    def test_mutating_batch_after_ingest_does_not_corrupt_sample(self, make):
        sampler = make()
        buffer = np.arange(5)
        sampler.process_batch(buffer)
        buffer[:] = -1  # caller reuses the buffer for the next batch
        assert all(int(item) >= 0 for item in sampler.sample_items())

    def test_mutating_initial_items_array_does_not_corrupt_sample(self):
        initial = np.arange(3)
        fast_rtbs = RTBS(n=10, lambda_=0.1, initial_items=initial, rng=0)
        fast_ttbs = TTBS(n=10, lambda_=0.1, mean_batch_size=20, initial_items=initial, rng=0)
        initial[:] = -7
        assert sorted(int(i) for i in fast_rtbs.sample_items()) == [0, 1, 2]
        assert sorted(int(i) for i in fast_ttbs.sample_items()) == [0, 1, 2]
