"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(20180129)


def make_batches(num_batches: int, batch_size: int) -> list[list[tuple[int, int]]]:
    """Batches of identifiable items ``(batch_index, position)`` (1-based batches)."""
    return [
        [(batch_index, position) for position in range(batch_size)]
        for batch_index in range(1, num_batches + 1)
    ]


def empirical_inclusion_by_batch(samples: list[list[tuple[int, int]]], num_batches: int,
                                 batch_size: int) -> np.ndarray:
    """Fraction of each batch's items present in the final sample, averaged over trials.

    ``samples`` holds one final sample per independent trial; items must be
    ``(batch_index, position)`` tuples as produced by :func:`make_batches`.
    """
    counts = np.zeros(num_batches)
    for sample in samples:
        per_batch = np.zeros(num_batches)
        for batch_index, _ in sample:
            per_batch[batch_index - 1] += 1
        counts += per_batch / batch_size
    return counts / len(samples)
