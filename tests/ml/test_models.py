"""Tests for the kNN, linear-regression and Naive-Bayes models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.knn import KNNClassifier
from repro.ml.linreg import LinearRegressionModel
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.streams.items import LabeledItem


class TestKNNClassifier:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KNNClassifier(k=1).predict(np.zeros((1, 2)))

    def test_fit_validates_shapes(self):
        model = KNNClassifier(k=1)
        with pytest.raises(ValueError):
            model.fit(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(2))

    def test_nearest_neighbour_classification(self):
        features = np.array([[0.0, 0.0], [0.0, 1.0], [10.0, 10.0], [10.0, 11.0]])
        labels = np.array([0, 0, 1, 1])
        model = KNNClassifier(k=1).fit(features, labels)
        assert model.predict(np.array([[0.5, 0.5]]))[0] == 0
        assert model.predict(np.array([[9.5, 10.5]]))[0] == 1

    def test_majority_vote(self):
        features = np.array([[0.0], [0.1], [0.2], [5.0], [5.1]])
        labels = np.array([0, 0, 0, 1, 1])
        model = KNNClassifier(k=5).fit(features, labels)
        assert model.predict(np.array([[0.15]]))[0] == 0

    def test_k_larger_than_training_set(self):
        model = KNNClassifier(k=50).fit(np.array([[0.0], [1.0]]), np.array([3, 3]))
        assert model.predict(np.array([[0.4]]))[0] == 3

    def test_fit_items_and_predict_items(self):
        items = [
            LabeledItem(features=(0.0, 0.0), label="a"),
            LabeledItem(features=(5.0, 5.0), label="b"),
        ]
        model = KNNClassifier(k=1)
        model.fit_items(items)
        assert model.is_fitted
        predictions = model.predict_items([LabeledItem(features=(4.9, 5.1), label="?")])
        assert predictions[0] == "b"

    def test_empty_fit_items_is_noop(self):
        model = KNNClassifier(k=1)
        model.fit_items([])
        assert not model.is_fitted
        assert model.predict_items([]).size == 0


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(0, 1, size=(200, 2))
        labels = features @ np.array([4.2, -0.4])
        model = LinearRegressionModel().fit(features, labels)
        assert np.allclose(model.coefficients, [4.2, -0.4], atol=1e-8)
        assert model.intercept == pytest.approx(0.0, abs=1e-8)

    def test_intercept_fitting(self):
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = 2.0 * features[:, 0] + 5.0
        model = LinearRegressionModel(fit_intercept=True).fit(features, labels)
        assert model.intercept == pytest.approx(5.0)
        model_no_intercept = LinearRegressionModel(fit_intercept=False).fit(features, labels)
        assert model_no_intercept.intercept == 0.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressionModel().predict(np.zeros((1, 2)))

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.empty((0, 2)), np.empty(0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros((5, 2)), np.zeros(4))

    def test_prediction_shape(self):
        model = LinearRegressionModel().fit(np.array([[1.0], [2.0]]), np.array([1.0, 2.0]))
        assert model.predict(np.array([[3.0], [4.0], [5.0]])).shape == (3,)


class TestMultinomialNaiveBayes:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.array([[-1.0, 2.0]]), np.array([0]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict(np.zeros((1, 2)))

    def test_separable_topics(self):
        # Class 0 uses words {0,1}; class 1 uses words {2,3}.
        rng = np.random.default_rng(1)
        features, labels = [], []
        for _ in range(200):
            counts = np.zeros(4)
            label = int(rng.random() < 0.5)
            active = [0, 1] if label == 0 else [2, 3]
            for _ in range(20):
                counts[rng.choice(active)] += 1
            features.append(counts)
            labels.append(label)
        model = MultinomialNaiveBayes().fit(np.array(features), np.array(labels))
        assert model.predict(np.array([[10.0, 10.0, 0.0, 0.0]]))[0] == 0
        assert model.predict(np.array([[0.0, 0.0, 10.0, 10.0]]))[0] == 1

    def test_log_proba_shape(self):
        features = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array(["x", "y"])
        model = MultinomialNaiveBayes().fit(features, labels)
        assert model.predict_log_proba(np.array([[1.0, 1.0]])).shape == (1, 2)

    def test_priors_influence_prediction(self):
        # With identical likelihoods, the majority class wins.
        features = np.ones((10, 2))
        labels = np.array([0] * 8 + [1] * 2)
        model = MultinomialNaiveBayes().fit(features, labels)
        assert model.predict(np.array([[1.0, 1.0]]))[0] == 0

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit(np.empty((0, 2)), np.empty(0))
