"""Tests for evaluation metrics and the online model-management loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rtbs import RTBS
from repro.core.sliding_window import SlidingWindow
from repro.ml.knn import KNNClassifier
from repro.ml.linreg import LinearRegressionModel
from repro.ml.metrics import expected_shortfall, mean_squared_error, misclassification_rate
from repro.ml.retraining import ModelManager, RetrainingResult
from repro.service import SamplerService
from repro.streams.gaussian_mixture import GaussianMixtureStream
from repro.streams.items import Batch, LabeledItem
from repro.streams.patterns import Mode
from repro.streams.regression import RegressionStream


class TestMisclassificationRate:
    def test_all_correct(self):
        assert misclassification_rate([1, 2, 3], [1, 2, 3]) == 0.0

    def test_all_wrong(self):
        assert misclassification_rate([1, 1], [2, 2]) == 100.0

    def test_partial(self):
        assert misclassification_rate([1, 1, 1, 1], [1, 1, 2, 2]) == 50.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            misclassification_rate([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            misclassification_rate([], [])


class TestMeanSquaredError:
    def test_zero_error(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestExpectedShortfall:
    def test_average_of_worst_fraction(self):
        losses = list(range(1, 11))  # 1..10
        assert expected_shortfall(losses, level=0.2) == pytest.approx(9.5)

    def test_level_one_is_the_mean(self):
        losses = [1.0, 2.0, 3.0, 4.0]
        assert expected_shortfall(losses, level=1.0) == pytest.approx(np.mean(losses))

    def test_small_series_uses_at_least_one_value(self):
        assert expected_shortfall([5.0, 1.0], level=0.1) == 5.0

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            expected_shortfall([1.0], level=0.0)
        with pytest.raises(ValueError):
            expected_shortfall([1.0], level=1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_shortfall([], level=0.1)

    def test_es_never_below_mean(self):
        rng = np.random.default_rng(0)
        losses = rng.uniform(0, 100, size=50)
        assert expected_shortfall(losses, 0.1) >= np.mean(losses)


class TestRetrainingResult:
    def test_mean_and_shortfall(self):
        result = RetrainingResult(losses=[10.0, 20.0, 30.0, 100.0])
        assert result.mean_loss() == pytest.approx(40.0)
        assert result.mean_loss(skip=2) == pytest.approx(65.0)
        assert result.shortfall(level=0.25) == 100.0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RetrainingResult(losses=[1.0]).mean_loss(skip=5)
        with pytest.raises(ValueError):
            RetrainingResult(losses=[]).shortfall()


class TestModelManager:
    @staticmethod
    def _classification_batches(num_batches: int, batch_size: int, seed: int = 0):
        generator = GaussianMixtureStream(num_classes=4, rng=seed)
        return [
            Batch(
                time=float(index),
                items=generator.generate_batch(batch_size, Mode.NORMAL, index),
            )
            for index in range(1, num_batches + 1)
        ]

    def test_rejects_bad_parameters(self):
        sampler = SlidingWindow(n=10, rng=0)
        with pytest.raises(ValueError):
            ModelManager(sampler, KNNClassifier, misclassification_rate, retrain_every=0)
        with pytest.raises(ValueError):
            ModelManager(sampler, KNNClassifier, misclassification_rate, min_train_size=0)

    def test_run_records_one_loss_per_batch(self):
        batches = self._classification_batches(6, 30)
        manager = ModelManager(
            SlidingWindow(n=100, rng=1), lambda: KNNClassifier(k=3), misclassification_rate
        )
        result = manager.run(batches)
        assert len(result.losses) == 6
        assert len(result.sample_sizes) == 6
        assert result.modes == ["normal"] * 6

    def test_learning_reduces_loss(self):
        batches = self._classification_batches(12, 60, seed=3)
        manager = ModelManager(
            SlidingWindow(n=300, rng=1), lambda: KNNClassifier(k=3), misclassification_rate
        )
        result = manager.run(batches)
        # After warm-up on several batches the classifier should beat the
        # untrained first-batch prediction by a wide margin.
        assert np.mean(result.losses[4:]) < result.losses[0]

    def test_warmup_records_nothing_but_trains(self):
        batches = self._classification_batches(5, 40)
        manager = ModelManager(
            SlidingWindow(n=200, rng=1), lambda: KNNClassifier(k=3), misclassification_rate
        )
        manager.warmup(batches[:4])
        assert manager.model.is_fitted
        result = manager.run(batches[4:])
        assert len(result.losses) == 1

    def test_step_rejects_empty_batch(self):
        manager = ModelManager(
            SlidingWindow(n=10, rng=0), lambda: KNNClassifier(k=1), misclassification_rate
        )
        with pytest.raises(ValueError):
            manager.step([])

    def test_min_train_size_keeps_previous_model(self):
        sampler = RTBS(n=100, lambda_=3.0, rng=0)  # aggressive decay empties the sample
        manager = ModelManager(
            sampler,
            lambda: KNNClassifier(k=1),
            misclassification_rate,
            min_train_size=50,
        )
        batches = self._classification_batches(3, 5)
        manager.run(batches)
        # The sample never reaches 50 items, so no model is ever trained.
        assert not manager.model.is_fitted

    def test_retrain_every_controls_refresh(self):
        batches = self._classification_batches(4, 20)
        manager = ModelManager(
            SlidingWindow(n=100, rng=0),
            lambda: KNNClassifier(k=1),
            misclassification_rate,
            retrain_every=2,
        )
        manager.step(batches[0])
        model_after_first = manager.model
        manager.step(batches[1])
        assert manager.model is not model_after_first

    def test_regression_manager(self):
        generator = RegressionStream(rng=5)
        batches = [
            Batch(time=float(i), items=generator.generate_batch(50, Mode.NORMAL, i))
            for i in range(1, 8)
        ]
        manager = ModelManager(
            SlidingWindow(n=200, rng=1),
            LinearRegressionModel,
            mean_squared_error,
            min_train_size=2,
        )
        result = manager.run(batches)
        assert result.losses[-1] < result.losses[0]
        assert result.losses[-1] < 2.5


class TestModelManagerWithSamplerService:
    """The Sections 1/6 loop running sharded and parallel end to end."""

    @staticmethod
    def _service(executor, num_shards: int = 4) -> SamplerService:
        # LabeledItem is not directly routable (it is a dataclass), so the
        # service routes on the feature tuple — a stable, hashable key.
        return SamplerService(
            lambda rng: RTBS(n=80, lambda_=0.1, rng=rng),
            num_shards=num_shards,
            key_fn=lambda item: item.features,
            rng=13,
            executor=executor,
        )

    @staticmethod
    def _batches(num_batches: int, batch_size: int, seed: int = 0):
        generator = GaussianMixtureStream(num_classes=4, rng=seed)
        return [
            Batch(
                time=float(index),
                items=generator.generate_batch(batch_size, Mode.NORMAL, index),
            )
            for index in range(1, num_batches + 1)
        ]

    def test_sharded_loop_runs_and_learns(self):
        batches = self._batches(10, 60, seed=3)
        manager = ModelManager(
            self._service("serial"), lambda: KNNClassifier(k=3), misclassification_rate
        )
        result = manager.run(batches)
        assert len(result.losses) == 10
        assert manager.model.is_fitted
        assert np.mean(result.losses[4:]) < result.losses[0]
        service = manager.sampler
        assert len(service.active_shards) == 4
        # The training set really is the union of the shard samples.
        assert len(service.sample_items()) == service.stats()["total_items"]

    def test_thread_executor_loss_series_matches_serial(self):
        batches = self._batches(8, 40, seed=7)
        serial = ModelManager(
            self._service("serial"), lambda: KNNClassifier(k=3), misclassification_rate
        )
        serial_result = serial.run(batches)
        with self._service("thread:3") as service:
            threaded = ModelManager(
                service, lambda: KNNClassifier(k=3), misclassification_rate
            )
            threaded_result = threaded.run(batches)
        assert threaded_result.losses == serial_result.losses
        assert threaded_result.sample_sizes == serial_result.sample_sizes
