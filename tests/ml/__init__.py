"""Test package."""
