"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import rtbs_expected_size, rtbs_total_weight
from repro.core.brs import BatchedReservoir
from repro.core.chao import BatchedChao
from repro.core.latent import LatentSample, downsample
from repro.core.random_utils import multivariate_hypergeometric, stochastic_round
from repro.core.rtbs import RTBS
from repro.core.sliding_window import SlidingWindow
from repro.core.ttbs import TTBS
from repro.ml.metrics import expected_shortfall


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
batch_size_lists = st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=40)
decay_rates = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
capacities = st.integers(min_value=1, max_value=50)


def _run_sampler(sampler, batch_sizes):
    item = 0
    sample = []
    for size in batch_sizes:
        batch = list(range(item, item + size))
        item += size
        sample = sampler.process_batch(batch)
    return sample, item


# ----------------------------------------------------------------------
# latent samples and downsampling
# ----------------------------------------------------------------------
class TestLatentSampleProperties:
    @given(
        full_count=st.integers(min_value=0, max_value=40),
        fraction=st.one_of(st.just(0.0), st.floats(min_value=0.01, max_value=0.99)),
        fraction_of_weight=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_downsample_preserves_invariants(self, full_count, fraction, fraction_of_weight, seed):
        """Any valid downsample target yields a structurally valid latent sample."""
        rng = np.random.default_rng(seed)
        weight = full_count + fraction
        if weight <= 0:
            return
        full = list(range(full_count))
        partial = ["partial"] if fraction > 0 else []
        latent = LatentSample(full=full, partial=partial, weight=weight)
        latent.check_invariants()
        target = weight * fraction_of_weight
        if target <= 0:
            return
        result = downsample(latent, target, rng)
        result.check_invariants()
        assert result.weight == pytest.approx(target)
        assert set(result.items()) <= set(latent.items())
        assert result.footprint <= latent.footprint + 1

    @given(
        full_count=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_realized_size_is_floor_or_ceil(self, full_count, seed):
        rng = np.random.default_rng(seed)
        weight = full_count + float(rng.uniform(0.01, 0.99))
        latent = LatentSample(full=list(range(full_count)), partial=["p"], weight=weight)
        realized = latent.realize(rng)
        assert len(realized) in {full_count, full_count + 1}


# ----------------------------------------------------------------------
# random primitives
# ----------------------------------------------------------------------
class TestRandomPrimitiveProperties:
    @given(
        value=st.floats(min_value=0.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_stochastic_round_adjacent(self, value, seed):
        rng = np.random.default_rng(seed)
        rounded = stochastic_round(rng, value)
        assert math.floor(value) <= rounded <= math.ceil(value)

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_multivariate_hypergeometric_totals(self, sizes, seed, data):
        rng = np.random.default_rng(seed)
        total = sum(sizes)
        draws = data.draw(st.integers(min_value=0, max_value=total))
        counts = multivariate_hypergeometric(rng, sizes, draws)
        assert sum(counts) == draws
        assert all(0 <= count <= size for count, size in zip(counts, sizes))


# ----------------------------------------------------------------------
# samplers under arbitrary batch-size sequences
# ----------------------------------------------------------------------
class TestSamplerProperties:
    @given(batch_sizes=batch_size_lists, n=capacities, lambda_=decay_rates,
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_rtbs_bound_and_weight(self, batch_sizes, n, lambda_, seed):
        """R-TBS never exceeds its capacity and tracks the analytic weight exactly."""
        sampler = RTBS(n=n, lambda_=lambda_, rng=seed)
        sample, total_items = _run_sampler(sampler, batch_sizes)
        assert len(sample) <= n
        assert len(set(sample)) == len(sample)
        assert sampler.total_weight == pytest.approx(
            rtbs_total_weight(batch_sizes, lambda_), rel=1e-9, abs=1e-9
        )
        assert sampler.sample_weight == pytest.approx(
            rtbs_expected_size(batch_sizes, lambda_, n), rel=1e-9, abs=1e-9
        )
        assert all(0 <= item < total_items for item in sample)

    @given(batch_sizes=batch_size_lists, n=capacities,
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_batched_reservoir_size(self, batch_sizes, n, seed):
        """B-RS holds exactly min(n, items seen) distinct stream items."""
        sampler = BatchedReservoir(n=n, rng=seed)
        sample, total_items = _run_sampler(sampler, batch_sizes)
        assert len(sample) == min(n, total_items)
        assert len(set(sample)) == len(sample)

    @given(batch_sizes=batch_size_lists, n=capacities, lambda_=decay_rates,
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_chao_bound(self, batch_sizes, n, lambda_, seed):
        """B-Chao never exceeds n and never shrinks once full."""
        sampler = BatchedChao(n=n, lambda_=lambda_, rng=seed)
        was_full = False
        item = 0
        for size in batch_sizes:
            sample = sampler.process_batch(list(range(item, item + size)))
            item += size
            assert len(sample) <= n
            assert len(set(sample)) == len(sample)
            if was_full:
                assert len(sample) == n
            was_full = was_full or len(sample) == n

    @given(batch_sizes=batch_size_lists, n=capacities,
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sliding_window_keeps_exactly_the_latest(self, batch_sizes, n, seed):
        sampler = SlidingWindow(n=n, rng=seed)
        sample, total_items = _run_sampler(sampler, batch_sizes)
        expected = list(range(max(0, total_items - n), total_items))
        assert sample == expected

    @given(batch_sizes=batch_size_lists, lambda_=st.floats(min_value=0.01, max_value=1.0),
           n=capacities, seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_ttbs_sample_items_are_from_stream(self, batch_sizes, lambda_, n, seed):
        sampler = TTBS(
            n=n, lambda_=lambda_, mean_batch_size=30, rng=seed, enforce_feasibility=False
        )
        sample, total_items = _run_sampler(sampler, batch_sizes)
        assert len(set(sample)) == len(sample)
        assert all(0 <= item < total_items for item in sample)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(
        losses=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
        ),
        level=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_expected_shortfall_bounds(self, losses, level):
        """ES lies between the mean and the maximum and is monotone in the level."""
        es = expected_shortfall(losses, level)
        assert np.mean(losses) - 1e-9 <= es <= max(losses) + 1e-9
        stricter = expected_shortfall(losses, level / 2)
        assert stricter >= es - 1e-9
