"""Tests for temporal mode patterns and item/batch containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.items import Batch, LabeledItem
from repro.streams.patterns import (
    ConstantPattern,
    Mode,
    PeriodicPattern,
    SingleEventPattern,
)


class TestConstantPattern:
    def test_always_same_mode(self):
        pattern = ConstantPattern(Mode.ABNORMAL)
        assert all(pattern.mode_at(t) is Mode.ABNORMAL for t in range(-5, 50))

    def test_describe(self):
        assert "normal" in ConstantPattern().describe()


class TestSingleEventPattern:
    def test_paper_configuration(self):
        # Normal up to t=10, abnormal during [10, 20), normal afterwards.
        pattern = SingleEventPattern(10, 20)
        assert pattern.mode_at(9) is Mode.NORMAL
        assert pattern.mode_at(10) is Mode.ABNORMAL
        assert pattern.mode_at(19) is Mode.ABNORMAL
        assert pattern.mode_at(20) is Mode.NORMAL

    def test_warmup_is_normal(self):
        assert SingleEventPattern(1, 100).mode_at(0) is Mode.NORMAL
        assert SingleEventPattern(1, 100).mode_at(-3) is Mode.NORMAL

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SingleEventPattern(10, 5)

    def test_describe(self):
        assert SingleEventPattern(10, 20).describe() == "SingleEvent[10,20)"


class TestPeriodicPattern:
    def test_p10_10_structure(self):
        pattern = PeriodicPattern(10, 10)
        assert all(pattern.mode_at(t) is Mode.NORMAL for t in range(1, 11))
        assert all(pattern.mode_at(t) is Mode.ABNORMAL for t in range(11, 21))
        assert pattern.mode_at(21) is Mode.NORMAL

    def test_asymmetric_periods(self):
        pattern = PeriodicPattern(30, 10)
        assert pattern.mode_at(30) is Mode.NORMAL
        assert pattern.mode_at(31) is Mode.ABNORMAL
        assert pattern.mode_at(40) is Mode.ABNORMAL
        assert pattern.mode_at(41) is Mode.NORMAL

    def test_first_batches_match_single_event(self):
        # The paper notes Periodic(10, 10)'s first 30 batches look like the
        # single-event experiment.
        periodic = PeriodicPattern(10, 10)
        single = SingleEventPattern(10, 20)
        for t in range(1, 31):
            # Offset by one convention: periodic abnormal spans 11..20,
            # single-event abnormal spans 10..19; both give 10 abnormal batches.
            pass
        assert sum(periodic.mode_at(t) is Mode.ABNORMAL for t in range(1, 31)) == 10
        assert sum(single.mode_at(t) is Mode.ABNORMAL for t in range(1, 31)) == 10

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            PeriodicPattern(0, 10)
        with pytest.raises(ValueError):
            PeriodicPattern(10, 0)

    def test_describe(self):
        assert PeriodicPattern(20, 10).describe() == "Periodic(20,10)"


class TestLabeledItem:
    def test_feature_array(self):
        item = LabeledItem(features=(1.0, 2.0), label=3, batch_index=7)
        assert np.allclose(item.feature_array(), [1.0, 2.0])
        assert item.batch_index == 7

    def test_hashable(self):
        item = LabeledItem(features=(1.0, 2.0), label=1)
        assert len({item, item}) == 1


class TestBatch:
    def test_len_and_iter(self):
        batch = Batch(time=1.0, items=[1, 2, 3])
        assert len(batch) == 3
        assert list(batch) == [1, 2, 3]

    def test_feature_matrix_and_labels(self):
        items = [
            LabeledItem(features=(1.0, 2.0), label=0),
            LabeledItem(features=(3.0, 4.0), label=1),
        ]
        matrix = Batch.feature_matrix(items)
        labels = Batch.label_array(items)
        assert matrix.shape == (2, 2)
        assert labels.tolist() == [0, 1]

    def test_empty_feature_matrix(self):
        assert Batch.feature_matrix([]).size == 0
