"""Tests for the Gaussian-mixture, regression and text stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.gaussian_mixture import GaussianMixtureStream
from repro.streams.patterns import Mode, PeriodicPattern
from repro.streams.regression import RegressionStream
from repro.streams.stream import BatchStream
from repro.streams.batch_sizes import DeterministicBatchSize, UniformBatchSize
from repro.streams.text import RecurringContextTextStream


class TestGaussianMixtureStream:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GaussianMixtureStream(num_classes=3)
        with pytest.raises(ValueError):
            GaussianMixtureStream(frequency_ratio=0)
        with pytest.raises(ValueError):
            GaussianMixtureStream(noise_std=0)

    def test_batch_shape_and_labels(self):
        stream = GaussianMixtureStream(num_classes=10, rng=0)
        batch = stream.generate_batch(50, Mode.NORMAL, batch_index=3)
        assert len(batch) == 50
        assert all(0 <= item.label < 10 for item in batch)
        assert all(item.batch_index == 3 for item in batch)
        assert all(len(item.features) == 2 for item in batch)

    def test_empty_batch(self):
        assert GaussianMixtureStream(rng=0).generate_batch(0) == []

    def test_mode_flips_class_frequencies(self):
        stream = GaussianMixtureStream(num_classes=10, frequency_ratio=5.0, rng=1)
        normal = stream.generate_batch(4000, Mode.NORMAL)
        abnormal = stream.generate_batch(4000, Mode.ABNORMAL)
        normal_first_half = np.mean([item.label < 5 for item in normal])
        abnormal_first_half = np.mean([item.label < 5 for item in abnormal])
        assert normal_first_half == pytest.approx(5.0 / 6.0, abs=0.05)
        assert abnormal_first_half == pytest.approx(1.0 / 6.0, abs=0.05)

    def test_class_probabilities_sum_to_one(self):
        stream = GaussianMixtureStream(num_classes=100, rng=2)
        assert stream.class_probabilities(Mode.NORMAL).sum() == pytest.approx(1.0)
        assert stream.class_probabilities(Mode.ABNORMAL).sum() == pytest.approx(1.0)

    def test_items_are_near_their_centroids(self):
        stream = GaussianMixtureStream(num_classes=4, domain=1000.0, noise_std=1.0, rng=3)
        batch = stream.generate_batch(200, Mode.NORMAL)
        for item in batch:
            centroid = stream.centroids[item.label]
            assert np.linalg.norm(item.feature_array() - centroid) < 6.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixtureStream(rng=0).generate_batch(-1)


class TestRegressionStream:
    def test_coefficients_per_mode(self):
        stream = RegressionStream(rng=0)
        assert np.allclose(stream.coefficients(Mode.NORMAL), [4.2, -0.4])
        assert np.allclose(stream.coefficients(Mode.ABNORMAL), [-3.6, 3.8])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RegressionStream(noise_std=-1)
        with pytest.raises(ValueError):
            RegressionStream(normal_coefficients=(1.0, 2.0, 3.0))

    def test_generated_data_fits_the_model(self):
        stream = RegressionStream(noise_std=0.0, rng=1)
        batch = stream.generate_batch(100, Mode.NORMAL)
        for item in batch:
            x1, x2 = item.features
            assert item.label == pytest.approx(4.2 * x1 - 0.4 * x2, abs=1e-9)

    def test_covariates_in_unit_square(self):
        stream = RegressionStream(rng=2)
        batch = stream.generate_batch(500, Mode.ABNORMAL)
        features = np.array([item.features for item in batch])
        assert features.min() >= 0.0 and features.max() <= 1.0

    def test_empty_batch(self):
        assert RegressionStream(rng=0).generate_batch(0) == []


class TestRecurringContextTextStream:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RecurringContextTextStream(num_topics=3)
        with pytest.raises(ValueError):
            RecurringContextTextStream(vocabulary_size=2, num_topics=4)
        with pytest.raises(ValueError):
            RecurringContextTextStream(label_noise=0.7)

    def test_stream_shape(self):
        stream = RecurringContextTextStream(num_messages=200, context_length=50, rng=0)
        batches = stream.generate_stream(batch_size=50)
        assert len(batches) == 4
        assert all(len(batch) == 50 for batch in batches)

    def test_context_flips_every_context_length(self):
        stream = RecurringContextTextStream(context_length=300, rng=0)
        assert stream.context_of_message(0) == 0
        assert stream.context_of_message(299) == 0
        assert stream.context_of_message(300) == 1
        assert stream.context_of_message(600) == 0

    def test_interests_partially_overlap_between_contexts(self):
        stream = RecurringContextTextStream(num_topics=4, rng=0)
        context_a = stream.interesting_topics(0)
        context_b = stream.interesting_topics(1)
        assert context_a != context_b
        assert context_a & context_b  # some topics stay interesting

    def test_word_counts_are_non_negative_and_sum_to_document_length(self):
        stream = RecurringContextTextStream(words_per_document=25, label_noise=0.0, rng=1)
        message = stream.generate_message(0)
        counts = np.asarray(message.features)
        assert counts.min() >= 0
        assert counts.sum() == 25

    def test_labels_are_binary(self):
        stream = RecurringContextTextStream(rng=2)
        labels = {stream.generate_message(i).label for i in range(100)}
        assert labels <= {0, 1}

    def test_negative_message_index_rejected(self):
        with pytest.raises(ValueError):
            RecurringContextTextStream(rng=0).context_of_message(-1)


class TestBatchStream:
    def test_length_and_modes(self):
        generator = GaussianMixtureStream(num_classes=4, rng=0)
        stream = BatchStream(
            generator,
            pattern=PeriodicPattern(2, 2),
            batch_sizes=DeterministicBatchSize(10),
            warmup_batches=3,
            num_batches=8,
            rng=1,
        )
        batches = list(stream)
        assert len(batches) == len(stream) == 11
        assert all(batch.mode == "normal" for batch in batches[:3])
        post = [batch.mode for batch in batches[3:]]
        assert post == ["normal", "normal", "abnormal", "abnormal"] * 2

    def test_batch_times_are_increasing(self):
        generator = RegressionStream(rng=0)
        stream = BatchStream(generator, warmup_batches=2, num_batches=3, rng=1)
        times = [batch.time for batch in stream]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_batch_sizes_follow_process(self):
        generator = RegressionStream(rng=0)
        stream = BatchStream(
            generator,
            batch_sizes=UniformBatchSize(5, 15),
            warmup_batches=0,
            num_batches=20,
            rng=2,
        )
        assert all(5 <= len(batch) <= 15 for batch in stream)

    def test_rejects_negative_counts(self):
        generator = RegressionStream(rng=0)
        with pytest.raises(ValueError):
            BatchStream(generator, warmup_batches=-1)
        with pytest.raises(ValueError):
            BatchStream(generator, num_batches=-1)
