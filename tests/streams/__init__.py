"""Test package."""
