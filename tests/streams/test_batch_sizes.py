"""Tests for the batch-size processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.batch_sizes import (
    DeterministicBatchSize,
    GeometricBatchSize,
    PiecewiseBatchSize,
    PoissonBatchSize,
    UniformBatchSize,
    generate_sizes,
)


class TestDeterministic:
    def test_constant(self, rng):
        process = DeterministicBatchSize(100)
        assert [process.size(t, rng) for t in range(1, 5)] == [100] * 4
        assert process.mean(3) == 100.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicBatchSize(-1)


class TestUniform:
    def test_bounds(self, rng):
        process = UniformBatchSize(0, 200)
        sizes = [process.size(t, rng) for t in range(1, 500)]
        assert min(sizes) >= 0 and max(sizes) <= 200
        assert process.mean(1) == 100.0

    def test_mean_is_midpoint(self, rng):
        process = UniformBatchSize(50, 150)
        sizes = [process.size(t, rng) for t in range(1, 3000)]
        assert np.mean(sizes) == pytest.approx(100.0, rel=0.05)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformBatchSize(10, 5)
        with pytest.raises(ValueError):
            UniformBatchSize(-1, 5)


class TestPoisson:
    def test_mean(self, rng):
        process = PoissonBatchSize(40.0)
        sizes = [process.size(t, rng) for t in range(1, 3000)]
        assert np.mean(sizes) == pytest.approx(40.0, rel=0.05)
        assert process.mean(1) == 40.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonBatchSize(-1.0)


class TestGeometric:
    def test_constant_before_change_point(self, rng):
        process = GeometricBatchSize(initial=100, phi=1.002, change_point=200)
        assert process.size(200, rng) == 100
        assert process.size(1, rng) == 100

    def test_growth_after_change_point(self, rng):
        process = GeometricBatchSize(initial=100, phi=1.002, change_point=200)
        assert process.size(400, rng) == round(100 * 1.002**200)
        assert process.mean(400) == pytest.approx(100 * 1.002**200)

    def test_decay_after_change_point(self, rng):
        process = GeometricBatchSize(initial=100, phi=0.8, change_point=200)
        assert process.size(210, rng) == round(100 * 0.8**10)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GeometricBatchSize(initial=-1, phi=1.0)
        with pytest.raises(ValueError):
            GeometricBatchSize(initial=10, phi=0.0)
        with pytest.raises(ValueError):
            GeometricBatchSize(initial=10, phi=1.0, change_point=-1)


class TestPiecewise:
    def test_switches_between_regimes(self, rng):
        process = PiecewiseBatchSize(
            [(1, DeterministicBatchSize(10)), (5, DeterministicBatchSize(99))]
        )
        assert process.size(4, rng) == 10
        assert process.size(5, rng) == 99
        assert process.mean(6) == 99.0

    def test_rejects_empty_segments(self):
        with pytest.raises(ValueError):
            PiecewiseBatchSize([])

    def test_rejects_late_first_segment(self):
        with pytest.raises(ValueError):
            PiecewiseBatchSize([(5, DeterministicBatchSize(1))])


class TestGenerateSizes:
    def test_length_and_reproducibility(self):
        process = UniformBatchSize(0, 10)
        first = generate_sizes(process, 20, rng=3)
        second = generate_sizes(process, 20, rng=3)
        assert len(first) == 20
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_sizes(DeterministicBatchSize(1), -1)
