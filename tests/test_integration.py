"""End-to-end integration tests exercising the public API the way a user would."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    BatchedChao,
    BatchedReservoir,
    BTBS,
    ModelManager,
    RTBS,
    SlidingWindow,
    TTBS,
    UniformReservoir,
    lambda_for_retention,
)
from repro.distributed import DistributedBatch, DistributedRTBS, SimulatedCluster
from repro.ml import KNNClassifier, LinearRegressionModel, mean_squared_error, misclassification_rate
from repro.streams import (
    BatchStream,
    DeterministicBatchSize,
    GaussianMixtureStream,
    PeriodicPattern,
    RegressionStream,
    SingleEventPattern,
)


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.2.0"
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_quickstart_docstring_flow(self):
        sampler = RTBS(n=100, lambda_=0.1, rng=42)
        sample = []
        for batch_number in range(10):
            sample = sampler.process_batch(
                range(batch_number * 50, (batch_number + 1) * 50)
            )
        assert len(sample) <= 100


class TestSamplerInteroperability:
    def test_all_samplers_share_the_interface(self):
        samplers = [
            RTBS(n=50, lambda_=0.1, rng=0),
            TTBS(n=50, lambda_=0.1, mean_batch_size=20, rng=0),
            BTBS(lambda_=0.1, rng=0),
            BatchedReservoir(n=50, rng=0),
            BatchedChao(n=50, lambda_=0.1, rng=0),
            SlidingWindow(n=50, rng=0),
            UniformReservoir(n=50, rng=0),
        ]
        for sampler in samplers:
            for batch_index in range(1, 6):
                sample = sampler.process_batch([(batch_index, i) for i in range(20)])
            assert isinstance(sample, list)
            assert sampler.batches_seen == 5

    def test_lambda_calibration_feeds_sampler(self):
        lam = lambda_for_retention(0.1, 40)
        sampler = RTBS(n=10, lambda_=lam, rng=0)
        sampler.process_batch(list(range(5)))
        assert sampler.total_weight == 5.0


class TestEndToEndClassification:
    def test_rtbs_recovers_faster_than_uniform_after_mode_change(self):
        """The paper's central claim at small scale: time-biased retraining adapts."""
        generator = GaussianMixtureStream(num_classes=30, rng=3)
        stream = BatchStream(
            generator,
            pattern=SingleEventPattern(3, 100),  # switch to abnormal and stay there
            batch_sizes=DeterministicBatchSize(100),
            warmup_batches=30,
            num_batches=16,
            rng=4,
        )
        batches = list(stream)
        results = {}
        for label, sampler in {
            "R-TBS": RTBS(n=600, lambda_=0.2, rng=5),
            "Unif": UniformReservoir(n=600, rng=5),
        }.items():
            manager = ModelManager(
                sampler, lambda: KNNClassifier(k=7), misclassification_rate
            )
            manager.warmup(batches[:30])
            results[label] = manager.run(batches[30:])
        # Late in the abnormal period the time-biased sample has adapted while
        # the uniform sample is still dominated by stale normal-mode data.
        rtbs_late = np.mean(results["R-TBS"].losses[-5:])
        unif_late = np.mean(results["Unif"].losses[-5:])
        assert rtbs_late < unif_late

    def test_regression_pipeline_produces_sane_mse(self):
        generator = RegressionStream(rng=0)
        stream = BatchStream(
            generator,
            pattern=PeriodicPattern(5, 5),
            warmup_batches=20,
            num_batches=10,
            rng=1,
        )
        batches = list(stream)
        manager = ModelManager(
            RTBS(n=500, lambda_=0.1, rng=2),
            LinearRegressionModel,
            mean_squared_error,
            min_train_size=2,
        )
        manager.warmup(batches[:20])
        result = manager.run(batches[20:])
        assert len(result.losses) == 10
        assert min(result.losses) < 3.0


class TestSerialVersusDistributed:
    def test_serial_and_distributed_rtbs_agree_statistically(self):
        """Both implementations must produce the same sample weight trajectory."""
        lambda_, n, batch_size, num_batches = 0.15, 80, 25, 40
        serial = RTBS(n=n, lambda_=lambda_, rng=1)
        cluster = SimulatedCluster(num_workers=3)
        distributed = DistributedRTBS(n=n, lambda_=lambda_, cluster=cluster, rng=2)
        for batch_index in range(1, num_batches + 1):
            batch = [(batch_index, i) for i in range(batch_size)]
            serial.process_batch(batch)
            distributed.process_batch(batch)
            assert distributed.sample_weight == pytest.approx(serial.sample_weight)
            assert distributed.total_weight == pytest.approx(serial.total_weight)
        serial_ages = np.mean([num_batches - b for b, _ in serial.sample_items()])
        distributed_ages = np.mean([num_batches - b for b, _ in distributed.sample_items()])
        # Same time-biased age profile (loose check, both heavily recent).
        assert abs(serial_ages - distributed_ages) < 3.0

    def test_virtual_cluster_scale_run(self):
        cluster = SimulatedCluster(num_workers=8)
        algorithm = DistributedRTBS(n=1_000_000, lambda_=0.07, cluster=cluster, rng=0)
        for batch_index in range(1, 11):
            runtime = algorithm.process_batch(
                DistributedBatch.virtual(500_000, 8, batch_id=batch_index)
            )
            assert runtime > 0
        assert algorithm.full_item_count() <= 1_000_000
