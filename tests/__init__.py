"""Test package."""
