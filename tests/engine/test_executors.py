"""Tests for the partitioned-execution engine backends."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import RTBS
from repro.distributed import SimulatedCluster
from repro.engine import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    get_executor,
    ingest_shard_state,
    map_partitions,
    merge_samples,
    reduce_merge,
)


def _square(x: int) -> int:
    return x * x


class TestBackends:
    @pytest.mark.parametrize("spec", ["serial", "thread", "thread:2", "process:2"])
    def test_map_partitions_preserves_partition_order(self, spec):
        with get_executor(spec) as executor:
            assert executor.map_partitions(_square, range(20)) == [
                x * x for x in range(20)
            ]

    def test_empty_partition_list(self):
        for executor in (SerialExecutor(), ThreadPoolExecutor(2), ProcessPoolExecutor(2)):
            with executor:
                assert executor.map_partitions(_square, []) == []

    def test_reduce_merge_runs_driver_side(self):
        with ThreadPoolExecutor(2) as executor:
            driver_thread = threading.get_ident()
            seen: list[int] = []

            def merge(parts):
                seen.append(threading.get_ident())
                return sum(parts)

            assert executor.reduce_merge(merge, [1, 2, 3]) == 6
            assert seen == [driver_thread]

    def test_thread_tasks_share_the_interpreter(self):
        # In-process backends may close over live mutable state.
        counter = {"value": 0}
        lock = threading.Lock()

        def bump(_):
            with lock:
                counter["value"] += 1

        with ThreadPoolExecutor(4) as executor:
            executor.map_partitions(bump, range(50))
        assert counter["value"] == 50

    def test_stage_records_accumulate_and_reset(self):
        executor = SerialExecutor()
        executor.map_partitions(_square, range(3), description="first")
        executor.reduce_merge(sum, [1, 2], description="second")
        assert [record.description for record in executor.stages] == ["first", "second"]
        assert executor.stages[0].num_tasks == 3
        assert executor.elapsed >= 0.0
        executor.reset_clock()
        assert executor.stages == [] and executor.elapsed == 0.0

    def test_stage_records_are_capped_for_long_running_callers(self):
        # An unbounded-stream service dispatches forever through one
        # executor; only the most recent records are retained while the
        # elapsed total keeps accumulating.
        executor = SerialExecutor()
        executor.max_stage_records = 10
        for index in range(25):
            executor.map_partitions(_square, [index], description=f"stage-{index}")
        assert len(executor.stages) == 10
        assert executor.stages[-1].description == "stage-24"
        assert executor.stages[0].description == "stage-15"

    def test_ships_state_flags(self):
        assert not SerialExecutor().ships_state
        assert not ThreadPoolExecutor().ships_state
        assert ProcessPoolExecutor().ships_state

    def test_module_level_primitives_delegate(self):
        executor = SerialExecutor()
        assert map_partitions(executor, _square, [2, 3]) == [4, 9]
        assert reduce_merge(executor, sum, [4, 9]) == 13


class TestGetExecutor:
    def test_resolves_specs(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadPoolExecutor)
        assert isinstance(get_executor("process"), ProcessPoolExecutor)
        assert isinstance(get_executor("thread:3"), ThreadPoolExecutor)

    def test_instances_pass_through(self):
        executor = ThreadPoolExecutor(2)
        assert get_executor(executor) is executor

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            get_executor("gpu")
        with pytest.raises(ValueError, match="worker count"):
            get_executor("thread:many")
        with pytest.raises(ValueError, match="no worker count"):
            get_executor("serial:4")
        with pytest.raises(TypeError, match="executor spec"):
            get_executor(3)
        with pytest.raises(ValueError, match="max_workers"):
            ThreadPoolExecutor(0)
        with pytest.raises(ValueError, match="max_workers"):
            ProcessPoolExecutor(-1)

    def test_rejects_trailing_colon_with_empty_worker_count(self):
        # Regression: "thread:"/"serial:" used to be silently accepted
        # because the empty worker field is falsy.
        with pytest.raises(ValueError, match="worker count"):
            get_executor("thread:")
        with pytest.raises(ValueError, match="worker count"):
            get_executor("serial:")
        with pytest.raises(ValueError, match="worker count"):
            get_executor("process:")


class TestShardTasks:
    def test_ingest_shard_state_round_trips_exactly(self):
        # Restore -> ingest -> snapshot must equal ingesting in place.
        reference = RTBS(n=50, lambda_=0.2, rng=0)
        shipped = RTBS(n=50, lambda_=0.2, rng=0)
        batches = [np.arange(i * 100, (i + 1) * 100) for i in range(5)]
        reference.process_stream(batches, times=[1.0, 2.5, 3.0, 4.5, 6.0])
        state = ingest_shard_state(
            (shipped.state_dict(), batches, [1.0, 2.5, 3.0, 4.5, 6.0])
        )
        restored = RTBS.from_state_dict(state)
        assert restored.sample_items() == reference.sample_items()
        assert restored.total_weight == reference.total_weight
        assert restored.time == reference.time

    def test_merge_samples_preserves_partition_order(self):
        assert merge_samples([[1, 2], [], [3], [4, 5]]) == [1, 2, 3, 4, 5]


class TestSimulatedClusterAsExecutor:
    def test_cluster_implements_the_protocol(self):
        cluster = SimulatedCluster(num_workers=3)
        assert isinstance(cluster, Executor)
        assert cluster.name == "simulated"
        # Unpriced map: tasks run, clock untouched (pricing is separate).
        assert cluster.map_partitions(_square, [1, 2, 3]) == [1, 4, 9]
        assert cluster.elapsed == 0.0
        # Priced map: the same call charges the cost-model stage.
        cluster.map_partitions(_square, [1, 2, 3], description="work", costs=[1.0, 2.0, 3.0])
        assert cluster.elapsed > 3.0
        assert cluster.stages[-1].description == "work"
        assert cluster.stages[-1].worker_times == (1.0, 2.0, 3.0)

    def test_thread_backend_runs_tasks_without_changing_prices(self):
        serial = SimulatedCluster(num_workers=4)
        threaded = SimulatedCluster(num_workers=4, backend=ThreadPoolExecutor(2))
        for cluster in (serial, threaded):
            cluster.map_partitions(_square, range(4), description="stage", costs=2.0)
        assert serial.elapsed == threaded.elapsed
        assert serial.stages[-1].duration == threaded.stages[-1].duration
        threaded.shutdown()

    def test_transport_capable_process_backend_is_accepted(self):
        # The persistent-worker process backend provides a transport, so
        # distributed algorithms can keep partitions resident; module-level
        # tasks also run through the generic map path.
        with ProcessPoolExecutor(2) as backend:
            cluster = SimulatedCluster(num_workers=2, backend=backend)
            assert cluster.map_partitions(_square, [2, 3]) == [4, 9]

    def test_plain_state_shipping_backend_is_rejected(self):
        class Shipper(SerialExecutor):
            ships_state = True

        with pytest.raises(ValueError, match="transport-capable"):
            SimulatedCluster(num_workers=2, backend=Shipper())
