"""Tests for the persistent-worker shared-memory transport layer."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core import RTBS
from repro.engine import (
    EngineError,
    ProcessPoolExecutor,
    RemoteTaskError,
    ShardWorkerPool,
    WorkerCrashError,
    restore_sampler,
    service_ingest_frame,
    service_ingest_routed,
    snapshot_sampler,
)


def _square(x: int) -> int:
    return x * x


def _fail(x):
    raise ValueError(f"intentional failure on {x!r}")


def _echo_arrays(residents, **kwargs):
    """Return array sums so tests can verify ring contents arrived intact."""
    return {name: float(np.asarray(value).sum()) for name, value in kwargs.items()}


def _get_attached(residents, key):
    return type(residents[key]).__name__


def _boom(residents, **kwargs):
    raise ValueError("boom")


@pytest.fixture
def pool():
    with ShardWorkerPool(max_workers=2, ring_bytes=1 << 20) as pool:
        yield pool


class TestResidentLifecycle:
    def test_attach_ingest_snapshot_detach_round_trip(self, pool):
        """Restore→resident ingest→snapshot equals the in-process trajectory."""
        reference = RTBS(n=50, lambda_=0.2, rng=0)
        shipped = RTBS(n=50, lambda_=0.2, rng=0)
        key = ("svc", 9, 0)
        pool.attach(key, restore_sampler, shipped.state_dict(), worker=0)
        for index in range(5):
            batch = np.arange(index * 100, (index + 1) * 100)
            reference.process_stream([batch], times=[float(index + 1)])
            pool.apply(
                0,
                service_ingest_frame,
                kwargs={"time": float(index + 1), "num_shards": 1, "service_id": 9},
                arrays={
                    "payload": batch,
                    "shard_ids": np.zeros(len(batch), dtype=np.int64),
                },
            )
        mid = RTBS.from_state_dict(pool.snapshot(key, snapshot_sampler))
        assert mid.sample_items() == reference.sample_items()
        assert key in pool.resident_keys
        final = RTBS.from_state_dict(pool.detach(key, snapshot_sampler))
        assert final.sample_items() == reference.sample_items()
        assert final.total_weight == reference.total_weight
        assert key not in pool.resident_keys

    def test_detach_without_snapshot_discards(self, pool):
        pool.attach("junk", restore_sampler, RTBS(n=5, lambda_=0.1, rng=0).state_dict(), worker=1)
        assert pool.detach("junk") is None
        with pytest.raises(EngineError, match="no resident object"):
            pool.worker_for("junk")

    def test_duplicate_attach_is_rejected(self, pool):
        state = RTBS(n=5, lambda_=0.1, rng=0).state_dict()
        pool.attach("dup", restore_sampler, state, worker=0)
        with pytest.raises(EngineError, match="already attached"):
            pool.attach("dup", restore_sampler, state, worker=1)
        pool.detach("dup")


class TestRingBuffer:
    def test_frames_larger_than_the_ring_grow_the_segment(self):
        # A tiny ring forces both wraparound and segment growth.
        with ShardWorkerPool(max_workers=1, ring_bytes=4096) as pool:
            for index in range(10):
                payload = np.arange(index * 1000, (index + 1) * 1000, dtype=np.int64)
                result = pool.apply(
                    0, _echo_arrays, arrays={"payload": payload}, sync=True
                )
                assert result["payload"] == float(payload.sum())

    def test_pipelined_frames_survive_wraparound(self):
        with ShardWorkerPool(max_workers=1, ring_bytes=8192) as pool:
            sums = []
            expected = []
            for index in range(50):
                payload = np.full(200, index, dtype=np.int64)
                expected.append(float(payload.sum()))
                pool.apply(
                    0,
                    _echo_arrays,
                    arrays={"payload": payload},
                    on_result=lambda r: sums.append(r["payload"]),
                )
            pool.drain()
            assert sums == expected

    def test_mixed_dtypes_and_object_fallback(self, pool):
        payload = np.array(["a", "bb", "ccc"], dtype=object)
        numeric = np.linspace(0.0, 1.0, 7)
        result = pool.apply(
            0,
            _echo_arrays,
            kwargs={},
            arrays={"weights": numeric, "payload": np.arange(3)},
            sync=True,
        )
        assert result["weights"] == pytest.approx(float(numeric.sum()))
        # Object arrays cannot ride shared memory; they fall back to pickle.
        name = pool.apply(
            0,
            _get_attached_type_of_payload,
            kwargs={"payload": payload},
            sync=True,
        )
        assert name == "ndarray"


def _get_attached_type_of_payload(residents, payload):
    return type(payload).__name__


class TestGenericTasks:
    def test_run_tasks_preserves_order(self, pool):
        assert pool.run_tasks(_square, list(range(23))) == [x * x for x in range(23)]

    def test_remote_errors_carry_the_original_traceback(self, pool):
        with pytest.raises(RemoteTaskError, match="intentional failure"):
            pool.run_tasks(_fail, [1, 2, 3])

    def test_pool_survives_task_errors(self, pool):
        with pytest.raises(RemoteTaskError):
            pool.run_tasks(_fail, [1])
        assert pool.run_tasks(_square, [5]) == [25]


class TestWorkerCrash:
    def test_killed_worker_raises_worker_crash_error_naming_it(self):
        with ShardWorkerPool(max_workers=2, ring_bytes=1 << 20) as pool:
            key = ("svc", 1, 0)
            pool.attach(key, restore_sampler, RTBS(n=10, lambda_=0.1, rng=0).state_dict(), worker=0)
            pool.drain()
            victim = pool.workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(WorkerCrashError, match="shard worker 0") as excinfo:
                for _ in range(200):
                    pool.apply(
                        0,
                        service_ingest_frame,
                        kwargs={"time": 1.0, "num_shards": 1, "service_id": 1},
                        arrays={
                            "payload": np.arange(64),
                            "shard_ids": np.zeros(64, dtype=np.int64),
                        },
                    )
                    pool.drain()
                    time.sleep(0.01)
            # The error names the resident state lost with the worker.
            assert "restore" in str(excinfo.value)

    def test_crash_error_is_an_engine_error(self):
        assert issubclass(WorkerCrashError, EngineError)
        assert issubclass(RemoteTaskError, EngineError)


class TestAckWatermark:
    """The tag watermark that tells a WAL-backed driver what is truly done."""

    def test_none_until_the_first_tagged_command(self, pool):
        assert pool.acked_through() is None
        pool.apply(0, _echo_arrays, arrays={"x": np.arange(4)})  # untagged
        pool.drain()
        assert pool.acked_through() is None

    def test_a_fanned_out_tag_acks_only_when_every_command_does(self, pool):
        # One batch fans out to both workers under a single tag; the tag is
        # acknowledged as a unit.
        for worker in (0, 1):
            pool.apply(worker, _echo_arrays, arrays={"x": np.arange(8)}, tag=0)
        pool.drain()
        assert pool.acked_through() == 0
        pool.apply(1, _echo_arrays, arrays={"x": np.arange(8)}, tag=1)
        pool.drain()
        assert pool.acked_through() == 1

    def test_a_failed_command_pins_the_watermark_forever(self, pool):
        pool.apply(0, _echo_arrays, arrays={"x": np.arange(4)}, tag=0)
        pool.drain()
        assert pool.acked_through() == 0
        pool.apply(0, _boom, tag=1)
        with pytest.raises(RemoteTaskError, match="boom"):
            pool.drain()
        # Later batches may still succeed, but the watermark never moves
        # past the lost one — its batch must be replayed, not dropped.
        pool.apply(1, _echo_arrays, arrays={"x": np.arange(4)}, tag=2)
        pool.drain()
        assert pool.acked_through() == 0

    def test_a_crashed_worker_keeps_the_watermark_conservative(self):
        with ShardWorkerPool(max_workers=2, ring_bytes=1 << 20) as pool:
            pool.apply(0, _echo_arrays, arrays={"x": np.arange(4)}, tag=0)
            pool.drain()
            victim = pool.workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(WorkerCrashError):
                for index in range(200):
                    pool.apply(
                        0,
                        _echo_arrays,
                        arrays={"x": np.arange(4)},
                        tag=1 + index,
                    )
                    pool.drain()
                    time.sleep(0.01)
            # Everything submitted after the crash died with the worker:
            # the watermark still reports only batch 0 as durable.
            assert pool.acked_through() == 0

    def test_tags_must_be_non_decreasing(self, pool):
        pool.apply(0, _echo_arrays, arrays={"x": np.arange(4)}, tag=5)
        with pytest.raises(EngineError, match="non-decreasing"):
            pool.apply(0, _echo_arrays, arrays={"x": np.arange(4)}, tag=4)
        pool.drain()


class TestExecutorIntegration:
    def test_process_executor_exposes_transport(self):
        with ProcessPoolExecutor(2) as executor:
            assert executor.provides_transport
            pool = executor.transport
            assert pool is executor.transport  # one pool, reused
            assert pool.run_tasks(_square, [3]) == [9]

    def test_shutdown_closes_and_recreates_the_pool(self):
        executor = ProcessPoolExecutor(1)
        first = executor.transport
        executor.shutdown()
        with pytest.raises(EngineError, match="closed"):
            first.run_tasks(_square, [1])
        second = executor.transport
        assert second is not first
        assert second.run_tasks(_square, [4]) == [16]
        executor.shutdown()


def _payload_list(residents, payload):
    return np.asarray(payload).tolist()


class TestScatterFrames:
    """write_frame's scatter path: gather rows straight into the ring."""

    def test_scatter_gathers_rows_into_the_ring(self, pool):
        source = np.arange(100, dtype=np.int64) * 3
        indices = np.array([5, 1, 7, 7, 42], dtype=np.int64)
        result = pool.apply(
            0, _payload_list, scatters={"payload": (source, indices)}, sync=True
        )
        assert result == source[indices].tolist()

    def test_scatter_mixes_with_plain_arrays(self, pool):
        source = np.linspace(0.0, 1.0, 50)
        indices = np.arange(0, 50, 7)
        result = pool.apply(
            0,
            _echo_arrays,
            arrays={"extra": np.arange(4)},
            scatters={"weights": (source, indices)},
            sync=True,
        )
        assert result["extra"] == 6.0
        assert result["weights"] == pytest.approx(float(source[indices].sum()))

    def test_string_dtype_scatter_rides_the_ring(self, pool):
        source = np.array(["alpha", "beta", "gamma"])
        indices = np.array([2, 2, 0])
        result = pool.apply(
            0, _payload_list, scatters={"payload": (source, indices)}, sync=True
        )
        assert result == ["gamma", "gamma", "alpha"]

    def test_object_dtype_scatter_falls_back_to_pickle(self, pool):
        source = np.array(["a", "bb", None, 4], dtype=object)
        indices = np.array([2, 0, 3])
        result = pool.apply(
            0, _payload_list, scatters={"payload": (source, indices)}, sync=True
        )
        assert result == [None, "a", 4]

    def test_empty_scatter_selection(self, pool):
        source = np.arange(10)
        indices = np.empty(0, dtype=np.int64)
        result = pool.apply(
            0, _payload_list, scatters={"payload": (source, indices)}, sync=True
        )
        assert result == []


class TestDoubleBuffering:
    """The ring's two halves overlap driver writes with worker reads."""

    def test_halves_alternate_under_pipelined_load(self):
        with ShardWorkerPool(max_workers=1, ring_bytes=1 << 15) as pool:
            handle = pool.workers[0]
            halves = set()
            results = []
            expected = []
            for index in range(40):
                payload = np.full(512, index, dtype=np.int64)  # 4 KiB frames
                expected.append(float(payload.sum()))
                pool.apply(
                    0,
                    _echo_arrays,
                    arrays={"x": payload},
                    on_result=lambda r: results.append(r["x"]),
                )
                halves.add(handle.active_half)
            pool.drain()
            assert results == expected
            # 16 KiB halves fill after four frames, so the driver must have
            # flipped — and every flip waited only on the other half's acks.
            assert halves == {0, 1}
            assert handle.half_pending == [0, 0]

    def test_oversized_frame_grows_segment_and_resets_halves(self):
        with ShardWorkerPool(max_workers=1, ring_bytes=4096) as pool:
            handle = pool.workers[0]
            big = np.arange(10_000, dtype=np.int64)  # 80 KB > capacity // 2
            result = pool.apply(0, _echo_arrays, arrays={"x": big}, sync=True)
            assert result["x"] == float(big.sum())
            assert handle.capacity >= 2 * big.nbytes
            assert handle.half_pending == [0, 0]

    def test_half_pending_reclaimed_after_failed_commands(self):
        with ShardWorkerPool(max_workers=1, ring_bytes=1 << 16) as pool:
            handle = pool.workers[0]
            pool.apply(0, _boom, arrays={"x": np.arange(16)})
            with pytest.raises(RemoteTaskError, match="boom"):
                pool.drain()
            # The worker finished reading the frame even though the command
            # failed; its ring half must be reusable.
            assert handle.half_pending == [0, 0]
            result = pool.apply(
                0, _echo_arrays, arrays={"x": np.arange(16)}, sync=True
            )
            assert result["x"] == float(np.arange(16).sum())


class TestServiceIngestRouted:
    """Worker-side ingest of pre-routed frames (the fused dispatch path)."""

    def test_walks_preassembled_slices_bit_identically(self):
        reference = {s: RTBS(n=20, lambda_=0.1, rng=s) for s in (0, 2)}
        residents = {("svc", 7, s): RTBS(n=20, lambda_=0.1, rng=s) for s in (0, 2)}
        payload = np.arange(50)
        counts = service_ingest_routed(residents, payload, 1.0, 7, [(0, 30), (2, 20)])
        assert counts == {0: 30, 2: 20}
        reference[0].process_stream([payload[:30]], times=[1.0])
        reference[2].process_stream([payload[30:]], times=[1.0])
        for shard in (0, 2):
            assert (
                residents[("svc", 7, shard)].sample_items()
                == reference[shard].sample_items()
            )

    def test_profile_reports_ingest_seconds(self):
        residents = {("svc", 1, 0): RTBS(n=5, lambda_=0.1, rng=0)}
        counts, seconds = service_ingest_routed(
            residents, np.arange(3), 1.0, 1, [(0, 3)], profile=True
        )
        assert counts == {0: 3}
        assert seconds >= 0.0
