"""The lint must run clean on the real ``src/`` tree, and the CLI must
behave as CI invokes it."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import ROUTING_FINGERPRINTS, default_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
CLI = REPO_ROOT / "tools" / "repro_lint.py"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(CLI), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestSelfCheck:
    def test_real_source_tree_is_clean(self) -> None:
        report = run_lint([SRC], default_rules())
        assert report.findings == [], "\n" + "\n".join(
            f.render() for f in report.findings
        )

    def test_every_real_waiver_states_a_reason(self) -> None:
        report = run_lint([SRC], default_rules())
        assert report.waived, "expected the known transport waivers to appear"
        assert all(f.waiver_reason for f in report.waived)

    def test_recorded_fingerprint_matches_current_routing_module(self) -> None:
        from repro.analysis import compute_routing_fingerprint

        version, fingerprint = compute_routing_fingerprint()
        assert version in ROUTING_FINGERPRINTS
        assert ROUTING_FINGERPRINTS[version] == fingerprint


class TestCli:
    def test_cli_exits_zero_and_emits_json_on_clean_tree(self) -> None:
        result = run_cli("--format=json", "src/")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["summary"]["findings"] == 0
        assert payload["summary"]["waived"] >= 2
        assert payload["files_checked"] > 50

    def test_cli_exits_nonzero_on_violations(self) -> None:
        result = run_cli("tests/analysis/fixtures/violations")
        assert result.returncode == 1
        assert "error[" in result.stdout

    def test_cli_lists_rules(self) -> None:
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in (
            "determinism",
            "pickle-ban",
            "error-swallowing",
            "iter-order",
            "state-dict",
            "routing-fingerprint",
        ):
            assert rule_id in result.stdout

    def test_cli_prints_recordable_fingerprint(self) -> None:
        from repro.analysis import compute_routing_fingerprint

        result = run_cli("--print-routing-fingerprint")
        assert result.returncode == 0
        assert "sha256:" in result.stdout
        # The CLI prints the *current* module's (version, fingerprint) pair,
        # which must be the latest recorded entry.
        version, fingerprint = compute_routing_fingerprint()
        assert version == max(ROUTING_FINGERPRINTS)
        assert str(version) in result.stdout
        assert fingerprint in result.stdout

    def test_cli_import_check_passes_on_registry(self) -> None:
        result = run_cli("--import-check", "--format=json", "src/repro/analysis")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["summary"]["findings"] == 0
