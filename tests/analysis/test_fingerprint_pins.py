"""Pinned routing fingerprints, one per encoding version ever shipped.

These constants are the analysis-side record of every key→shard encoding
this repository has released. ``repro.analysis.fingerprints`` is the live
table the lint enforces; this test pins each entry to a literal so that an
edit to the table (accidental or otherwise) cannot pass review as a
one-line change — history must match these constants byte for byte. A new
encoding version *adds* a constant here; it never edits an existing one
(see docs/CONTRACTS.md for the bump procedure).
"""

from __future__ import annotations

from repro.analysis import ROUTING_FINGERPRINTS, compute_routing_fingerprint

#: Version 1 — per-key BLAKE2b string hashing; computed with the
#: version-1 normative function list over the version-1 source.
PINNED_V1 = "sha256:044ce8d50d17676c343bd6c2127c5848691270877dab9579cf01018ec285644a"

#: Version 2 — batch-vectorized FNV-1a/SplitMix64 string hashing and the
#: fused ``route_batch`` pass, with version dispatch keeping v1 loadable.
PINNED_V2 = "sha256:4158c25e5226e5f57ab3e89bf128cbd62bd0f27799153c9f6358ad0adce6930c"


class TestPinnedFingerprints:
    def test_recorded_table_matches_pins_exactly(self) -> None:
        assert ROUTING_FINGERPRINTS == {1: PINNED_V1, 2: PINNED_V2}

    def test_current_module_computes_the_latest_pin(self) -> None:
        version, fingerprint = compute_routing_fingerprint()
        assert version == 2
        assert fingerprint == PINNED_V2
