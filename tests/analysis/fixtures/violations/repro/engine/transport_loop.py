"""Fixture: error-swallowing handlers the rule must catch."""


def worker_loop(conn):
    while True:
        try:
            message = conn.recv()
        except Exception:  # broad: may mask WorkerCrashError
            continue
        if message is None:
            break


def run_once(fn):
    try:
        return fn()
    except:  # noqa: E722 - bare except, also broad
        return None
