"""Fixture: set-iteration hazards the iter-order rule must catch."""


def dispatch(shards):
    order = []
    for shard in {2, 0, 1}:  # set literal iteration
        order.append(shard)
    listed = list(set(shards))  # materializing a set() call
    nested = [x for x in {s for s in shards}]  # comprehension over a set comp
    merged = [k for k in set(shards).union({9})]  # set-method result
    return order, listed, nested, merged
