"""Fixture: every determinism violation the lint must catch.

Never imported — parsed only. The ``repro/core`` path components put it in
the determinism rule's scope.
"""

import random
import time
import uuid
from datetime import datetime

import numpy as np


def ambient_randomness():
    np.random.seed(42)  # legacy global-state API
    value = np.random.rand()  # legacy global-state API
    jitter = random.random()  # stdlib random call
    rng = np.random.default_rng()  # unseeded
    rng2 = np.random.default_rng(seed=None)  # unseeded via keyword
    stamp = time.time()  # wall clock
    when = datetime.now()  # wall clock
    token = uuid.uuid4()  # nondeterministic id
    return value, jitter, rng, rng2, stamp, when, token
