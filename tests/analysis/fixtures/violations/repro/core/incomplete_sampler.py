"""Fixture: a sampler whose state_dict() misses an assigned attribute."""


class LeakySampler:
    def __init__(self, n):
        self.n = n
        self._sample = []
        self._running_total = 0.0  # never serialized: the rule must flag it

    def add(self, items):
        self._sample = list(items)[: self.n]
        self._running_total += float(len(items))

    def _config_state(self):
        return {"n": self.n}

    def _payload_state(self):
        return {"sample": list(self._sample)}
