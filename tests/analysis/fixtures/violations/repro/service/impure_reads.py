"""Seeded pure-read violations: reads that drain, create shards, or draw."""


class LeakyService:
    def stats(self):
        self._executor.transport.drain()
        return {"batches_seen": self._batches_seen}

    def sample_items(self):
        sampler = self._get_or_create_shard(0)
        return sampler.sample_items()

    def shard_samples(self):
        self._sync()
        return {}

    def snapshot(self):
        jitter = self._rng.random()
        return {"jitter": jitter}
