"""Fixture: ambient clocks sneaking into a failover path.

Never imported — parsed only. The ``repro/service`` path components put it
in the determinism rule's scope. Every way of reading ambient time that a
failure detector might reach for must be flagged: heartbeat and timeout
decisions have to go through an injectable clock.
"""

import time
from time import monotonic, time_ns


def staleness_probe(last_progress):
    started = time.monotonic()  # ambient clock call
    nanos = time.time_ns()  # ambient clock call
    coarse = time.monotonic_ns()  # ambient clock call
    fallback = monotonic()  # imported name is flagged at the import
    stamp = time_ns()  # imported name is flagged at the import
    return started - last_progress, nanos, coarse, fallback, stamp
