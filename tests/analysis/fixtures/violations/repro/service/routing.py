"""Fixture: all normative names present but with *changed* bodies while
``ROUTING_VERSION`` still claims 1 — the fingerprint rule must fail."""

ROUTING_VERSION = 1


def _splitmix64_array(values):
    return values


def _shards_from_hashes(hashes, num_shards):
    return hashes % num_shards


def _splitmix64_scalar(value):
    return value


def _blake2b_bytes_hash(data):
    return 0


def stable_hash(key):
    return 0


def _string_array_shard_ids(keys, num_shards):
    return keys


def shard_ids_for_keys(keys, num_shards):
    return keys


def split_by_shard(keys, num_shards):
    return {}


def _check_version(version):
    return None


def _fnv1a64_units_scalar(units):
    return 0


def _string_array_hashes_v2(keys):
    return keys


def split_order(shard_ids, num_shards):
    return shard_ids


def route_batch(keys, num_shards):
    return keys
