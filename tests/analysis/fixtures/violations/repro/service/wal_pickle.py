"""Fixture: pickle-trust violations in a WAL-scoped module name."""

import pickle

import numpy as np


def load_payload(path):
    with open(path, "rb") as handle:
        meta = pickle.load(handle)
    data = np.load(path, allow_pickle=True)
    return meta, data
