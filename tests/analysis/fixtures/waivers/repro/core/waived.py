"""Fixture: waiver handling — one reasoned waiver, one missing its reason."""

import numpy as np


def reseed():
    return np.random.default_rng()  # repro-lint: ignore[determinism] -- fixture: entropy wanted here, reason recorded


def reseed_without_reason():
    # repro-lint: ignore[determinism]
    return np.random.default_rng()
