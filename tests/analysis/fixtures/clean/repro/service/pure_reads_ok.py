"""Conforming pure reads: consistent cuts, no drains, no creation, no draws."""


class SnapshotService:
    def snapshot(self):
        return dict(self._views)

    def stats(self):
        cut = self.snapshot()
        return {"active_shards": len(cut)}

    def sample_items(self):
        merged = []
        for shard_id in sorted(self._views):
            merged.extend(self._views[shard_id])
        return merged

    def shard(self, shard_id):
        try:
            return self._views[shard_id]
        except KeyError:
            raise KeyError(f"shard {shard_id} has no sampler yet") from None
