"""Fixture: the conforming failover-path clock idioms.

Never imported — parsed only. Elapsed-time decisions go through an
*injected* clock callable; ``perf_counter`` stays allowed because it only
feeds profiling deltas, never identity or control flow.
"""

from time import perf_counter
from typing import Callable


def staleness_probe(clock: Callable[[], float] | None, last_progress: float):
    begin = perf_counter()  # profiling delta, allowed
    if clock is None:
        return False, perf_counter() - begin
    return (clock() - last_progress) > 30.0, perf_counter() - begin
