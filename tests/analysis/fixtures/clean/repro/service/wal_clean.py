"""Fixture: a conforming WAL-scoped module — zero findings expected."""

import json

import numpy as np


def save_payload(path, array):
    np.save(path, array, allow_pickle=False)


def load_payload(path):
    return np.load(path, allow_pickle=False)


def write_manifest(path, manifest):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
