"""Fixture: a fully conforming core module — zero findings expected."""

import numpy as np


class TidySampler:
    # ``_mean_item`` is derived from the sample on demand; declared exempt.
    _STATE_DICT_EXEMPT = frozenset({"_mean_item"})
    # ``_pairs`` is serialized as two parallel arrays.
    _STATE_DICT_KEYS = {"_pairs": ("pair_keys", "pair_values")}

    def __init__(self, n, rng):
        self.n = n
        self._rng = rng  # arrives as a parameter: allowed
        self._sample = []
        self._pairs = []
        self._mean_item = 0.0

    def add(self, items):
        chosen = self._rng.integers(len(items))
        self._sample = [items[int(chosen)]]
        self._pairs = [(0, items[0])]
        self._mean_item = float(len(items))

    def _config_state(self):
        return {"n": self.n}

    def _payload_state(self):
        return {
            "sample": list(self._sample),
            "pair_keys": [k for k, _ in self._pairs],
            "pair_values": [v for _, v in self._pairs],
        }


def seeded_stream(seed):
    rng = np.random.default_rng(seed)  # explicitly seeded: allowed
    child = np.random.default_rng(np.random.SeedSequence(7))
    return rng, child


def ordered_dispatch(shards):
    return [shard for shard in sorted({s for s in shards})]  # sorted first
