"""Fixture: conforming engine error handling — zero findings expected."""


def run_once(fn):
    try:
        return fn()
    except (OSError, ValueError):  # narrow: expected failures only
        return None


def guarded(fn, cleanup):
    try:
        return fn()
    except BaseException:  # cleanup-and-reraise: exempt, the error propagates
        cleanup()
        raise
