"""Per-rule fixture tests: every rule fires on its seeded violation and
stays quiet on the conforming fixtures."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import default_rules, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"
WAIVERS = FIXTURES / "waivers"


def lint(path: Path):
    return run_lint([path], default_rules())


def findings_by_rule(report) -> dict[str, list]:
    grouped: dict[str, list] = {}
    for finding in report.findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


class TestSeededViolations:
    def test_determinism_rule_fires_on_every_seeded_pattern(self) -> None:
        report = lint(VIOLATIONS / "repro" / "core" / "det_violation.py")
        messages = [f.message for f in report.findings]
        assert all(f.rule == "determinism" for f in report.findings)
        assert any("'random' module" in m for m in messages)
        assert any("np.random.seed" in m for m in messages)
        assert any("np.random.rand" in m for m in messages)
        assert any("random.random()" in m for m in messages)
        assert sum("unseeded default_rng" in m for m in messages) == 2
        assert any("time.time()" in m for m in messages)
        assert any("datetime.now()" in m for m in messages)
        assert any("uuid.uuid4()" in m for m in messages)
        assert all(f.severity == "error" for f in report.findings)
        assert all(f.hint for f in report.findings)

    def test_determinism_rule_flags_every_ambient_clock_variant(self) -> None:
        report = lint(VIOLATIONS / "repro" / "service" / "replication_clock.py")
        messages = [f.message for f in report.findings]
        assert all(f.rule == "determinism" for f in report.findings)
        assert any("call to time.monotonic()" in m for m in messages)
        assert any("call to time.monotonic_ns()" in m for m in messages)
        assert any("call to time.time_ns()" in m for m in messages)
        assert any("import of time.monotonic " in m for m in messages)
        assert any("import of time.time_ns " in m for m in messages)
        assert all("injectable" in f.hint for f in report.findings)

    def test_pickle_ban_fires_on_import_and_allow_pickle(self) -> None:
        report = lint(VIOLATIONS / "repro" / "service" / "wal_pickle.py")
        grouped = findings_by_rule(report)
        messages = [f.message for f in grouped.pop("pickle-ban")]
        assert not grouped
        assert any("import of 'pickle'" in m for m in messages)
        assert any("allow_pickle=True" in m for m in messages)

    def test_error_swallowing_fires_on_broad_and_bare_except(self) -> None:
        report = lint(VIOLATIONS / "repro" / "engine" / "transport_loop.py")
        grouped = findings_by_rule(report)
        labels = [f.message for f in grouped.pop("error-swallowing")]
        assert not grouped
        assert any("except Exception" in m for m in labels)
        assert any("bare except:" in m for m in labels)
        assert any("WorkerCrashError" in f.hint for f in report.findings)

    def test_iter_order_fires_on_each_set_iteration_shape(self) -> None:
        report = lint(VIOLATIONS / "repro" / "core" / "set_iter.py")
        assert all(f.rule == "iter-order" for f in report.findings)
        assert len(report.findings) == 4  # literal, set() call, comp, .union()

    def test_state_dict_rule_flags_unserialized_attribute(self) -> None:
        report = lint(VIOLATIONS / "repro" / "core" / "incomplete_sampler.py")
        grouped = findings_by_rule(report)
        [finding] = grouped.pop("state-dict")
        assert not grouped
        assert "_running_total" in finding.message
        assert "LeakySampler" in finding.message

    def test_pure_read_rule_flags_drains_creation_and_draws(self) -> None:
        report = lint(VIOLATIONS / "repro" / "service" / "impure_reads.py")
        grouped = findings_by_rule(report)
        messages = [f.message for f in grouped.pop("pure-read")]
        assert not grouped
        assert any("stats()" in m and "drain()" in m for m in messages)
        assert any("_get_or_create_shard" in m for m in messages)
        assert any("shard_samples()" in m and "_sync()" in m for m in messages)
        assert any("draws randomness" in m and "snapshot()" in m for m in messages)
        assert all("consistent cut" in f.hint for f in report.findings)

    def test_routing_fingerprint_fails_without_version_bump(self) -> None:
        report = lint(VIOLATIONS / "repro" / "service" / "routing.py")
        grouped = findings_by_rule(report)
        [finding] = grouped.pop("routing-fingerprint")
        assert not grouped
        assert "ROUTING_VERSION is still 1" in finding.message
        assert "bump ROUTING_VERSION" in finding.hint

    def test_whole_violation_tree_fails_lint(self) -> None:
        report = lint(VIOLATIONS)
        assert report.exit_code == 1
        assert {f.rule for f in report.findings} == {
            "determinism",
            "pickle-ban",
            "error-swallowing",
            "iter-order",
            "state-dict",
            "pure-read",
            "routing-fingerprint",
        }


class TestCleanFixtures:
    def test_clean_tree_produces_no_findings(self) -> None:
        report = lint(CLEAN)
        assert report.findings == []
        assert report.exit_code == 0
        assert report.files_checked == 5

    def test_scoping_files_outside_repro_are_ignored(self, tmp_path) -> None:
        rogue = tmp_path / "rogue.py"
        rogue.write_text("import random\nx = random.random()\n")
        report = run_lint([rogue], default_rules())
        assert report.findings == []


class TestWaivers:
    def test_reasoned_waiver_suppresses_and_is_reported(self) -> None:
        report = lint(WAIVERS)
        assert [f.rule for f in report.findings] == ["waiver"]
        assert "no reason" in report.findings[0].message
        [waived] = report.waived
        assert waived.rule == "determinism"
        assert waived.waived
        assert "reason recorded" in waived.waiver_reason

    def test_waiver_entries_survive_json_round_trip(self) -> None:
        payload = lint(WAIVERS).to_dict()
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["waived"] == 1
        assert payload["waived"][0]["waived"] is True
        assert payload["waived"][0]["waiver_reason"]


class TestRuleSelection:
    def test_rule_filter_limits_to_requested_rule(self) -> None:
        report = run_lint([VIOLATIONS], default_rules(), rule_ids=["pickle-ban"])
        assert report.findings
        assert {f.rule for f in report.findings} == {"pickle-ban"}

    def test_unknown_rule_id_is_rejected(self) -> None:
        try:
            run_lint([VIOLATIONS], default_rules(), rule_ids=["no-such-rule"])
        except ValueError as error:
            assert "no-such-rule" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
