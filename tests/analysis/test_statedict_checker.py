"""The importing completeness checker: passes on every registered sampler,
catches a deliberately leaky one."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.statedict import (
    DEFAULT_CONFIGS,
    check_registered_samplers,
    check_sampler_class,
)
from repro.core import SAMPLER_TYPES, Sampler


class TestRegisteredSamplers:
    def test_every_registered_sampler_has_a_canonical_config(self) -> None:
        assert set(DEFAULT_CONFIGS) == set(SAMPLER_TYPES)

    def test_every_registered_sampler_round_trips_faithfully(self) -> None:
        problems = check_registered_samplers()
        assert problems == []


class ForgetfulReservoir(Sampler):
    """Keeps at most ``n`` items but never snapshots ``_items_dropped`` —
    and ``_items_dropped`` drives an (artificial) sampling decision, so the
    trajectory diverges after restore."""

    def __init__(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        record_history: bool = False,
    ) -> None:
        super().__init__(rng=rng, record_history=record_history)
        self.n = int(n)
        self._sample: list[Any] = []
        self._items_dropped = 0

    def sample_items(self) -> list[Any]:
        return list(self._sample)

    def _process_batch(self, items, elapsed) -> None:
        for item in items:
            # The parity of the forgotten counter decides acceptance: any
            # restore that loses it walks a different trajectory.
            if len(self._sample) < self.n and self._items_dropped % 2 == 0:
                self._sample.append(item)
            else:
                self._items_dropped += 1

    def _config_state(self) -> dict[str, Any]:
        return {"n": self.n}

    def _payload_state(self) -> dict[str, Any]:
        return {"sample": list(self._sample)}  # _items_dropped forgotten

    def _restore_payload(self, payload: dict[str, Any]) -> None:
        self._sample = list(payload["sample"])


class TestLeakDetection:
    def test_checker_flags_unsnapshotted_attribute(self) -> None:
        problems = check_sampler_class(ForgetfulReservoir, {"n": 3})
        assert problems
        assert any("_items_dropped" in problem for problem in problems)

    def test_checker_reports_unknown_config_instead_of_guessing(self) -> None:
        problems = check_sampler_class(ForgetfulReservoir)
        assert problems == [
            "ForgetfulReservoir: no canonical config known; pass config= "
            "explicitly"
        ]
