"""Test package."""
