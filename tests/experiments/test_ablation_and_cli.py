"""Tests for the ablation experiments and the command-line runner."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import compare_sample_size_variability, measure_chao_bias
from repro.experiments.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestAblations:
    def test_rtbs_variance_below_bernoulli(self):
        result = compare_sample_size_variability(
            lambda_=0.3, batch_size=8, num_batches=30, trials=120, rng=0
        )
        assert result.metrics["rtbs_mean_size"] == pytest.approx(
            result.metrics["btbs_mean_size"], rel=0.1
        )
        assert result.metrics["rtbs_size_variance"] < result.metrics["btbs_size_variance"]
        # Theorem 4.4: the R-TBS realized size only takes two adjacent values,
        # so its variance is below 1/4 + noise.
        assert result.metrics["rtbs_size_variance"] < 1.0

    def test_chao_bias_exceeds_rtbs(self):
        result = measure_chao_bias(trials=150, trickle_batches=8, rng=1)
        assert (
            result.metrics["chao_worst_relative_deviation"]
            > 3 * result.metrics["rtbs_worst_relative_deviation"]
        )
        assert len(result.series["chao_appearance_probability"]) == 9


class TestCLI:
    def test_experiment_registry_names(self):
        assert {"fig1", "fig7", "table1", "ablations"} <= set(EXPERIMENTS)

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("not-an-experiment")

    def test_parser_list_command(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_parser_run_command_with_options(self):
        arguments = build_parser().parse_args(["run", "fig1", "fig7", "--runs", "2"])
        assert arguments.names == ["fig1", "fig7"]
        assert arguments.runs == 2

    def test_main_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1" in output and "table1" in output

    def test_main_rejects_unknown_experiment(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_main_runs_ablations(self, capsys):
        # The ablation group is the cheapest full experiment; run it end to end.
        assert main(["run", "ablations", "--no-charts"]) == 0
        output = capsys.readouterr().out
        assert "ablation_sample_size_variability" in output
        assert "ablation_chao_bias" in output
