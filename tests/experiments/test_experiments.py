"""Tests for the experiment harness (reduced-scale versions of each figure/table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.distributed_perf import (
    FIGURE7_VARIANTS,
    run_figure7,
    run_figure8,
    run_figure9,
)
from repro.experiments.knn import KNNExperimentConfig, TABLE1_PATTERNS, run_knn_experiment, run_table1
from repro.experiments.naive_bayes import NaiveBayesExperimentConfig, run_naive_bayes_experiment
from repro.experiments.regression import (
    FIGURE12_CONFIGS,
    RegressionExperimentConfig,
    run_regression_experiment,
)
from repro.experiments.results import ExperimentResult, QualitySeries, SampleSizeSeries
from repro.experiments.sample_size import (
    FIGURE1_SCENARIOS,
    SampleSizeScenario,
    run_sample_size_scenario,
)
from repro.streams.batch_sizes import DeterministicBatchSize, GeometricBatchSize
from repro.streams.patterns import PeriodicPattern, SingleEventPattern


class TestResultContainers:
    def test_sample_size_series(self):
        series = SampleSizeSeries(label="x", sizes=[1, 2, 3, 4])
        assert series.mean() == 2.5
        assert series.maximum() == 4
        assert series.tail_mean(2) == 3.5
        with pytest.raises(ValueError):
            SampleSizeSeries(label="empty").mean()

    def test_quality_series(self):
        series = QualitySeries(label="x", losses=[10.0, 20.0])
        assert series.mean_loss() == 15.0
        with pytest.raises(ValueError):
            series.mean_loss(skip=5)

    def test_experiment_result(self):
        result = ExperimentResult(name="demo")
        result.add_series("a", [1, 2])
        result.add_metric("m", 3)
        assert result.series["a"] == [1.0, 2.0]
        assert result.metrics["m"] == 3.0


class TestFigure1:
    def test_scenarios_are_registered(self):
        assert set(FIGURE1_SCENARIOS) == {
            "fig1a_growing",
            "fig1b_stable_deterministic",
            "fig1c_stable_uniform",
            "fig1d_decaying",
        }

    def test_growing_batches_overflow_ttbs_but_not_rtbs(self):
        scenario = SampleSizeScenario(
            name="mini_growing",
            lambda_=0.05,
            batch_sizes=GeometricBatchSize(initial=100, phi=1.01, change_point=50),
            target_size=500,
            num_batches=300,
        )
        result = run_sample_size_scenario(scenario, rng=0)
        assert result.metrics["rtbs_max_size"] <= 500
        assert result.metrics["ttbs_max_size"] > 1000
        assert len(result.series["T-TBS"]) == 300

    def test_stable_batches_keep_both_near_target(self):
        scenario = SampleSizeScenario(
            name="mini_stable",
            lambda_=0.1,
            batch_sizes=DeterministicBatchSize(100),
            target_size=500,
            num_batches=200,
        )
        result = run_sample_size_scenario(scenario, rng=1)
        assert result.metrics["rtbs_tail_mean"] == pytest.approx(500, rel=0.02)
        assert result.metrics["ttbs_tail_mean"] == pytest.approx(500, rel=0.10)

    def test_decaying_batches_shrink_both(self):
        scenario = SampleSizeScenario(
            name="mini_decaying",
            lambda_=0.05,
            batch_sizes=GeometricBatchSize(initial=100, phi=0.5, change_point=50),
            target_size=500,
            num_batches=250,
        )
        result = run_sample_size_scenario(scenario, rng=2)
        assert result.metrics["rtbs_tail_mean"] < 200
        assert result.metrics["ttbs_tail_mean"] < 200


class TestKNNExperiment:
    @pytest.fixture(scope="class")
    def small_result(self):
        config = KNNExperimentConfig(
            pattern=SingleEventPattern(3, 6),
            sample_size=300,
            warmup_batches=20,
            num_batches=10,
            num_classes=20,
            shortfall_skip=0,
            runs=1,
        )
        return run_knn_experiment(config, rng=0)

    def test_series_lengths(self, small_result):
        for label in ("R-TBS", "SW", "Unif"):
            assert len(small_result.series[label]) == 10

    def test_metrics_present(self, small_result):
        for label in ("R-TBS", "SW", "Unif"):
            assert f"{label}_mean_miss" in small_result.metrics
            assert f"{label}_expected_shortfall" in small_result.metrics
            assert 0 <= small_result.metrics[f"{label}_mean_miss"] <= 100

    def test_table1_patterns_registered(self):
        assert set(TABLE1_PATTERNS) == {"Single Event", "P(10,10)", "P(20,10)", "P(30,10)"}

    def test_with_pattern_copy(self):
        config = KNNExperimentConfig(pattern=SingleEventPattern(3, 6))
        other = config.with_pattern(PeriodicPattern(2, 2), num_batches=12)
        assert other.num_batches == 12
        assert config.pattern is not other.pattern

    def test_run_table1_reduced(self):
        # A heavily reduced Table 1: one lambda, tiny horizon, small samples.
        result = run_table1(lambdas=(0.1,), runs=1, sample_size=200, rng=3)
        # 4 patterns x (R-TBS miss+es) + 4 patterns x (SW, Unif) x (miss+es)
        assert len(result.metrics) == 4 * 2 + 4 * 2 * 2
        assert all(value >= 0 for value in result.metrics.values())


class TestRegressionExperiment:
    def test_figure12_configs_registered(self):
        assert set(FIGURE12_CONFIGS) == {
            "fig12a_n1000_p10",
            "fig12b_n1600_p10",
            "fig12c_n1600_p16",
        }

    def test_small_run_produces_series_and_metrics(self):
        config = RegressionExperimentConfig(
            pattern=PeriodicPattern(3, 3),
            sample_size=400,
            warmup_batches=20,
            num_batches=12,
            shortfall_skip=0,
        )
        result = run_regression_experiment(config, rng=0)
        for label in ("R-TBS", "SW", "Unif"):
            assert len(result.series[label]) == 12
            assert result.metrics[f"{label}_mean_mse"] > 0
        assert result.metrics["rtbs_mean_sample_size"] <= 400

    def test_unsaturated_rtbs_sample_smaller_than_cap(self):
        # With n much larger than the equilibrium weight, R-TBS never saturates.
        config = RegressionExperimentConfig(
            pattern=PeriodicPattern(3, 3),
            sample_size=5000,
            warmup_batches=30,
            num_batches=5,
            shortfall_skip=0,
        )
        result = run_regression_experiment(config, rng=1)
        assert result.metrics["rtbs_mean_sample_size"] < 2000


class TestNaiveBayesExperiment:
    def test_small_run(self):
        config = NaiveBayesExperimentConfig(num_messages=300, context_length=75, batch_size=50)
        result = run_naive_bayes_experiment(config, rng=0)
        for label in ("R-TBS", "SW", "Unif"):
            assert len(result.series[label]) == 6
            assert 0 <= result.metrics[f"{label}_mean_miss"] <= 100


class TestDistributedPerformance:
    def test_figure7_variants_registered(self):
        labels = [variant.label for variant in FIGURE7_VARIANTS]
        assert labels == [
            "D-R-TBS (Cent,KV,RJ)",
            "D-R-TBS (Cent,KV,CJ)",
            "D-R-TBS (Cent,CP)",
            "D-R-TBS (Dist,CP)",
            "D-T-TBS (Dist,CP)",
        ]

    def test_figure7_ordering_at_reduced_scale(self):
        result = run_figure7(
            num_workers=4, batch_size=100_000, reservoir_size=200_000, num_batches=45
        )
        runtimes = [result.metrics[variant.label] for variant in FIGURE7_VARIANTS]
        # Strictly decreasing: every optimization helps, and D-T-TBS is fastest.
        assert all(earlier > later for earlier, later in zip(runtimes, runtimes[1:]))

    def test_figure8_runtime_decreases_with_workers(self):
        result = run_figure8(
            worker_counts=(2, 4, 8),
            batch_size=1_000_000,
            reservoir_size=200_000,
            num_batches=45,
        )
        runtimes = result.series["runtime"]
        assert runtimes[0] > runtimes[1] > runtimes[2]

    def test_figure9_runtime_increases_with_batch_size(self):
        result = run_figure9(
            batch_sizes=(10_000, 1_000_000, 100_000_000),
            num_workers=4,
            reservoir_size=200_000,
            num_batches=45,
        )
        runtimes = result.series["runtime"]
        assert runtimes[0] < runtimes[2]
        # Small batches are dominated by fixed overheads, so the curve is flat
        # at the low end and rises sharply at the high end.
        assert (runtimes[2] - runtimes[1]) > (runtimes[1] - runtimes[0])
