"""Tests for the text-table and ASCII-chart reporting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ascii_chart, format_result, format_table


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.50" in table and "2.25" in table

    def test_column_alignment(self):
        table = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = table.splitlines()
        assert len(lines[1]) >= len("a-much-longer-cell")

    def test_custom_float_format(self):
        table = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in table

    def test_non_float_cells_pass_through(self):
        table = format_table(["v"], [[42], ["text"]])
        assert "42" in table and "text" in table


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, height=6, width=20)
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"s": [0.0, 10.0]}, height=5, width=10)
        assert "10.00" in chart and "0.00" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"flat": [5.0, 5.0, 5.0]})
        assert "flat" in chart

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})


class TestFormatResult:
    def test_metric_lines(self):
        text = format_result("demo", {"accuracy": 0.5, "es": 1.25})
        assert "demo" in text
        assert "accuracy: 0.5000" in text
        assert "es: 1.2500" in text
