"""Reusable fault-injection harness for durability tests.

The durability layer exposes named *failpoints* (``repro.service.wal._fault``
calls) at every crash-relevant step: each WAL record append, each log flush
and fsync, each truncation rewrite, and each stage of a delta checkpoint
(shard sub-checkpoints, service state, the atomic manifest swap, garbage
collection). This module turns those into a crash-at-any-point property
test:

1. :func:`count_failpoints` runs the canonical workload once with a
   recording hook, learning the ordered list of failpoint sites it passes
   through;
2. :func:`crash_workload` re-runs the workload in a **child process** whose
   hook ``SIGKILL``\\ s it at a chosen failpoint — a real, unclean process
   death, not an exception (no ``finally`` blocks, no buffered-file flush
   on exit);
3. :func:`recover_and_finish` recovers from the crashed child's WAL
   directory, feeds the batches the recovered clock says are still owed,
   and the caller asserts the result is bit-identical to
   :func:`golden_state` — the uninterrupted run.

The workload itself is fixed (same seed, same batches — including an empty
batch, which advances the service clock without touching any shard) so the
golden trajectory is one constant, and the crash point plus executor
backend are the only variables.
"""

from __future__ import annotations

import itertools
import os
import signal
import time
from multiprocessing import get_all_start_methods, get_context

import numpy as np

import repro.service.wal as wal_module
from repro.core import RTBS
from repro.service import MissingCheckpointError, SamplerService, recover_service

NUM_SHARDS = 4
SEED = 123
CKPT_EVERY = 7
NUM_BATCHES = 30
BATCH_SIZE = 200
#: One batch mid-stream is empty: it advances the service clock and lands
#: in the commit log but in no shard log — recovery must replay the clock
#: advance anyway or every later default arrival time shifts.
EMPTY_BATCH_INDEX = 11


def make_factory():
    """The workload's shard-sampler factory (fresh per call; not shared)."""
    return lambda rng: RTBS(n=40, lambda_=0.15, rng=rng)


def workload_batches() -> list[np.ndarray]:
    rng = np.random.default_rng(2024)
    batches = [
        rng.integers(0, 100_000, size=BATCH_SIZE) for _ in range(NUM_BATCHES)
    ]
    batches[EMPTY_BATCH_INDEX] = np.array([], dtype=np.int64)
    return batches


def run_workload(
    wal_dir: str, backend: str | None, fsync: str = "os", until: int | None = None
) -> None:
    """The canonical durable-ingest workload (also run by crashing children)."""
    service = SamplerService(
        make_factory(),
        num_shards=NUM_SHARDS,
        rng=SEED,
        executor=backend,
        wal_dir=wal_dir,
        wal_fsync=fsync,
    )
    for index, batch in enumerate(workload_batches()[:until]):
        service.ingest_batch(batch)
        if (index + 1) % CKPT_EVERY == 0:
            service.checkpoint()
    service.close()


def golden_state() -> dict:
    """Final state of the uninterrupted workload (serial, no WAL).

    The WAL must not perturb the trajectory and every backend must match
    serial bit for bit, so this single constant is the reference for every
    (backend, crash point) combination.
    """
    service = SamplerService(make_factory(), num_shards=NUM_SHARDS, rng=SEED)
    for batch in workload_batches():
        service.ingest_batch(batch)
    return service.state_dict()


def count_failpoints(scratch_dir: str, fsync: str = "os") -> list[str]:
    """Ordered failpoint sites one uninterrupted workload passes through.

    Failpoints fire driver-side only (log appends, checkpoint writes), so
    the site sequence is backend-independent; the count is taken on the
    serial backend.
    """
    sites: list[str] = []
    wal_module._FAULT_HOOK = sites.append
    try:
        run_workload(os.path.join(scratch_dir, "failpoint-count"), None, fsync=fsync)
    finally:
        wal_module._FAULT_HOOK = None
    return sites


def install_crash_hook(
    crash_index: int | None = None,
    site_prefix: str | None = None,
    occurrence: int = 1,
) -> None:
    """Install a failpoint hook that ``SIGKILL``\\ s the current process.

    Either at the ``crash_index``-th failpoint overall (1-based), or at the
    ``occurrence``-th failpoint whose site name starts with ``site_prefix``
    — the latter pins a test to a semantically meaningful moment
    (mid-fsync, just before the manifest swap) regardless of how many
    failpoints precede it.
    """
    overall = itertools.count(1)
    matched = itertools.count(1)

    def hook(site: str) -> None:
        if site_prefix is not None:
            if site.startswith(site_prefix) and next(matched) == occurrence:
                os.kill(os.getpid(), signal.SIGKILL)
        elif next(overall) == crash_index:
            os.kill(os.getpid(), signal.SIGKILL)

    wal_module._FAULT_HOOK = hook


def _child_main(wal_dir, backend, fsync, crash_index, site_prefix, occurrence):
    install_crash_hook(crash_index, site_prefix, occurrence)
    try:
        run_workload(wal_dir, backend, fsync=fsync)
    finally:
        wal_module._FAULT_HOOK = None


def crash_workload(
    wal_dir: str,
    backend: str | None,
    fsync: str = "os",
    crash_index: int | None = None,
    site_prefix: str | None = None,
    occurrence: int = 1,
) -> int:
    """Run the workload in a child process that dies at the chosen failpoint.

    Returns the child's exit code: ``-SIGKILL`` when the failpoint fired,
    ``0`` when the chosen point lies beyond the workload's last failpoint
    (the run completed — also a valid recovery case: a clean close).
    """
    method = "fork" if "fork" in get_all_start_methods() else "spawn"
    process = get_context(method).Process(
        target=_child_main,
        args=(wal_dir, backend, fsync, crash_index, site_prefix, occurrence),
    )
    process.start()
    # Poll ``exitcode`` (waitpid) rather than ``join(timeout=...)``: join's
    # timeout path waits on the process *sentinel* pipe, whose write end is
    # inherited by the child's own worker processes — a SIGKILLed driver
    # with surviving workers would stall join for the full timeout even
    # though the child is already dead.
    deadline = time.monotonic() + 120.0
    while process.exitcode is None and time.monotonic() < deadline:
        time.sleep(0.02)
    if process.exitcode is None:  # pragma: no cover - hang safety net
        process.kill()
        process.join()
        raise AssertionError("crash-workload child hung")
    return process.exitcode


def recover_and_finish(
    wal_dir: str, backend: str | None, fsync: str = "os"
) -> SamplerService:
    """Recover after a crash and feed the batches still owed; return the service.

    ``service.batches_seen`` after recovery tells the producer where to
    resume — exactly the contract a real deployment relies on. A crash
    *before the first durable checkpoint* (mid-construction) raises
    :class:`~repro.service.MissingCheckpointError`: nothing was ever
    durable, so the deployment restarts from scratch with the same
    constructor — same seed, same trajectory.
    """
    batches = workload_batches()
    try:
        service = recover_service(
            wal_dir, make_factory(), executor=backend, fsync=fsync
        )
    except MissingCheckpointError:
        service = SamplerService(
            make_factory(),
            num_shards=NUM_SHARDS,
            rng=SEED,
            executor=backend,
            wal_dir=wal_dir,
            wal_fsync=fsync,
        )
    resume = service.batches_seen
    assert 0 <= resume <= len(batches), resume
    # Replay lag is bounded by the checkpoint cadence: everything at or
    # below the watermark came from the checkpoint, and at most one
    # checkpoint interval of batches (plus the one mid-append batch a crash
    # can lose) rides the log.
    assert service.batches_seen - 1 - service._wal_watermark <= CKPT_EVERY + 1
    for index in range(resume, len(batches)):
        service.ingest_batch(batches[index])
    return service


def install_worker_kill_hook(service: SamplerService, crash_index: int, worker: int = 0) -> list[str]:
    """SIGKILL one of ``service``'s pool workers at the ``crash_index``-th failpoint.

    The replication chaos harness: unlike :func:`install_crash_hook`, the
    *driver stays alive* — a primary shard worker is the victim, so the run
    exercises warm-standby promotion instead of offline recovery. Fires at
    most once, and only while the transport pool is attached (failpoints
    inside the constructor's initial checkpoint precede any worker; those
    indices degenerate to crash-free runs, which the sweep still verifies).
    Returns a list that receives the site name when the kill fires.
    """
    counter = itertools.count(1)
    fired: list[str] = []

    def hook(site: str) -> None:
        if fired or next(counter) != crash_index:
            return
        if not service._transport_attached:
            return
        pool = service.executor.transport
        handle = pool.workers[worker % pool.num_workers]
        fired.append(site)
        os.kill(handle.process.pid, signal.SIGKILL)

    wal_module._FAULT_HOOK = hook
    return fired


def run_replicated_workload(
    wal_dir: str,
    backend: str = "process:2",
    kill_at: int | None = None,
    worker: int = 0,
    ship_interval: int = 3,
) -> tuple[dict, int]:
    """The canonical workload on a replicated service, surviving one SIGKILL.

    Runs the exact batch/checkpoint schedule of :func:`run_workload` on a
    warm-standby service, optionally SIGKILLing one primary shard worker at
    the ``kill_at``-th failpoint mid-pipeline. The stream must complete
    *without manual recovery* — promotion is the service's job — and the
    returned final ``state_dict`` must be bit-identical to
    :func:`golden_state`. Returns ``(state_dict, failover_count)``.
    """
    from repro.service import ReplicationConfig

    service = SamplerService(
        make_factory(),
        num_shards=NUM_SHARDS,
        rng=SEED,
        executor=backend,
        wal_dir=wal_dir,
        replication=ReplicationConfig(ship_interval=ship_interval),
    )
    try:
        if kill_at is not None:
            install_worker_kill_hook(service, kill_at, worker)
        for index, batch in enumerate(workload_batches()):
            service.ingest_batch(batch)
            if (index + 1) % CKPT_EVERY == 0:
                service.checkpoint()
        state = service.state_dict()
        failovers = service.stats()["durability"]["replication"]["failovers"]
    finally:
        wal_module._FAULT_HOOK = None
        service.close()
    return state, failovers


def assert_states_equal(actual, expected, path: str = "") -> None:
    """Recursive bit-exact comparison of two ``state_dict`` trees."""
    assert type(actual) is type(expected) or (
        isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    ), f"{path}: {type(actual).__name__} != {type(expected).__name__}"
    if isinstance(expected, dict):
        assert set(actual) == set(expected), path
        for key in expected:
            assert_states_equal(actual[key], expected[key], f"{path}/{key}")
    elif isinstance(expected, (list, tuple)):
        assert len(actual) == len(expected), path
        for index, (a, b) in enumerate(zip(actual, expected)):
            assert_states_equal(a, b, f"{path}[{index}]")
    elif isinstance(expected, np.ndarray):
        assert expected.dtype == actual.dtype and np.array_equal(
            actual, expected
        ), path
    else:
        assert actual == expected, path
