#!/usr/bin/env python
"""Contract lint CLI — run the :mod:`repro.analysis` suite over source trees.

Usage::

    python tools/repro_lint.py src/                 # human-readable report
    python tools/repro_lint.py --format=json src/   # CI artifact
    python tools/repro_lint.py --rule determinism src/repro/core
    python tools/repro_lint.py --import-check src/  # + dynamic state_dict check
    python tools/repro_lint.py --print-routing-fingerprint

Exit status is 0 when no findings survive waivers, 1 otherwise, 2 on usage
errors. See docs/CONTRACTS.md for the contract catalogue and waiver policy.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path and (_SRC / "repro").is_dir():
    sys.path.insert(0, str(_SRC))

from repro.analysis import (  # noqa: E402 - after the sys.path bootstrap
    Finding,
    compute_routing_fingerprint,
    default_rules,
    run_lint,
)


def main(argv: list[str] | None = None) -> int:
    rules = default_rules()
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("paths", nargs="*", default=[], help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rule_ids",
        metavar="RULE",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--import-check",
        action="store_true",
        help="also import repro.core and round-trip every registered sampler "
        "through state_dict() (the dynamic completeness checker)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--print-routing-fingerprint",
        action="store_true",
        help="print the current routing fingerprint entry for "
        "src/repro/analysis/fingerprints.py and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id:20s} {rule.description}")
        return 0

    if args.print_routing_fingerprint:
        version, fingerprint = compute_routing_fingerprint()
        print(f"    {version}: \"{fingerprint}\",")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python tools/repro_lint.py src/)")

    try:
        report = run_lint(args.paths, rules, rule_ids=args.rule_ids)
    except ValueError as error:
        parser.error(str(error))

    if args.import_check:
        from repro.analysis.statedict import check_registered_samplers

        for problem in check_registered_samplers():
            report.findings.append(
                Finding(
                    rule="state-dict",
                    severity="error",
                    path="<import-check>",
                    line=0,
                    message=problem,
                    hint="extend _payload_state()/_config_state() until the "
                    "round-trip is faithful",
                )
            )

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
