"""Setuptools shim so `pip install -e .` works in offline environments.

The canonical project metadata lives in ``pyproject.toml``; this file only
enables legacy editable installs (``--no-use-pep517``) on machines where the
``wheel`` package is unavailable and PEP 660 editable builds cannot run.
"""

from setuptools import setup

setup()
